//! Lightweight cost evaluation for design-space exploration.
//!
//! The DSE engine (`cello-search`) scores thousands of candidate schedules;
//! it needs traffic + roofline cycles + energy, not the full [`RunReport`]
//! with its per-phase breakdown, labels and address-map/trace machinery.
//! This module provides that path: one operand-granular walk through the
//! existing engine against the backend the candidate's options imply
//! (CHORD-backed when `enable_chord`, the explicit oracle otherwise), with
//! the on-chip SRAM **partitioned by the candidate itself** — CHORD gets
//! whatever the schedule's pipeline buffer and register file leave behind.
//! That partition is the buffer half of the paper's co-design space: a
//! schedule that asks for a smaller pipeline buffer buys CHORD capacity,
//! and vice versa. Under a per-phase repartition
//! ([`cello_core::PhaseRepartition`]) the split is re-derived per pipeline
//! cluster and CHORD is resized at phase boundaries — the uniform split is
//! the degenerate global case, bit-exact with the single-split path.
//!
//! Multi-node schedules ([`cello_core::Partition`]) evaluate through the
//! same path: each node carries its own SRAM with the same
//! pipeline/RF/CHORD split, the engine scores one node's sliced tile
//! footprints against it, and DRAM totals aggregate across the mesh while
//! NoC word-hops become a fourth objective.

use crate::backends::{ChordBackend, ExplicitBackend, MemoryBackend};
use crate::engine::run_schedule;
use crate::report::RunReport;
use cello_core::accel::CelloConfig;
use cello_core::chord::{ChordConfig, ChordPolicyKind};
use cello_core::score::binding::Schedule;
use cello_graph::dag::TensorDag;
use serde::{Deserialize, Serialize};

/// The four objectives the search optimizes (Pareto dimensions).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Total roofline cycles (`max(compute, memory)` per phase, summed,
    /// plus serialized NoC exchanges on multi-node schedules).
    pub cycles: u64,
    /// Total DRAM traffic in bytes, aggregated across nodes.
    pub dram_bytes: u64,
    /// NoC traffic in byte-hops (0 on a single node).
    pub noc_hop_bytes: u64,
    /// Off-chip + on-chip + NoC energy in picojoules.
    pub energy_pj: f64,
}

impl CostEstimate {
    /// Collapses a full report to the four search objectives.
    pub fn from_report(r: &RunReport) -> Self {
        Self {
            cycles: r.cycles,
            dram_bytes: r.dram_bytes,
            noc_hop_bytes: r.noc_hop_bytes,
            energy_pj: r.offchip_energy_pj + r.onchip_energy_pj + r.noc_energy_pj,
        }
    }

    /// Total bytes moved between chips: DRAM plus NoC hop-bytes — the §V-B
    /// scalable-dataflow figure of merit.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.dram_bytes.saturating_add(self.noc_hop_bytes)
    }

    /// Weak Pareto dominance: no worse on every objective, strictly better
    /// on at least one.
    ///
    /// Energy compares through `total_cmp`, which is a total order even for
    /// NaN/∞ — a NaN energy sorts above every finite value, so a
    /// NaN-energy candidate can be dominated (and never dominates on
    /// energy). Under the naive `<=`/`<` comparison a NaN candidate was
    /// both non-dominated and non-dominating, silently corrupting the
    /// Pareto front.
    pub fn dominates(&self, other: &CostEstimate) -> bool {
        let energy = self.energy_pj.total_cmp(&other.energy_pj);
        let no_worse = self.cycles <= other.cycles
            && self.dram_bytes <= other.dram_bytes
            && self.noc_hop_bytes <= other.noc_hop_bytes
            && energy != std::cmp::Ordering::Greater;
        let better = self.cycles < other.cycles
            || self.dram_bytes < other.dram_bytes
            || self.noc_hop_bytes < other.noc_hop_bytes
            || energy == std::cmp::Ordering::Less;
        no_worse && better
    }
}

/// CHORD capacity left for a schedule that reserves `pipeline_buffer_words`
/// and `rf_capacity_words` of the accelerator's SRAM, minus the schedule's
/// prefetch staging carve (never below one cache line's worth, so
/// degenerate partitions still simulate). The global split is just the
/// uniform case of [`phase_chord_capacity_words`] — one formula, not two.
pub fn chord_capacity_words(accel: &CelloConfig, schedule: &Schedule) -> u64 {
    phase_chord_capacity_words(
        accel,
        &cello_core::PhaseSplit::of_options(&schedule.options),
        &schedule.transfer,
    )
}

/// CHORD capacity during one phase of a repartitioned schedule: the SRAM
/// minus that phase's own pipeline/RF reservation and the schedule-wide
/// prefetch staging carve ([`cello_core::TransferTuning::staging_words`] —
/// overlap trades CHORD reuse capacity for latency hiding), with the same
/// one-cache-line floor. Equals [`chord_capacity_words`] for every phase of
/// a uniform split — the global path is the degenerate case.
pub fn phase_chord_capacity_words(
    accel: &CelloConfig,
    split: &cello_core::score::repartition::PhaseSplit,
    transfer: &cello_core::TransferTuning,
) -> u64 {
    accel
        .sram_words()
        .saturating_sub(split.reserved_words())
        .saturating_sub(transfer.staging_words(accel.staging_quantum_words))
        .max(16)
}

/// Evaluates one schedule on the cheap path, returning the three objectives.
///
/// Backend choice mirrors [`crate::baselines::run_config`]: CHORD (full
/// PRELUDE+RIFF) when the schedule steers operands to CHORD, the explicit
/// oracle otherwise — but CHORD is sized by [`chord_capacity_words`] rather
/// than the whole SRAM, because the candidate's own buffer split is part of
/// what the search explores.
pub fn evaluate_schedule(
    dag: &TensorDag,
    schedule: &Schedule,
    accel: &CelloConfig,
) -> CostEstimate {
    CostEstimate::from_report(&evaluate_report(dag, schedule, accel))
}

/// The full report behind [`evaluate_schedule`] (the `cello_dse` CLI uses it
/// for TSV emission; the search itself only keeps the [`CostEstimate`]).
pub fn evaluate_report(dag: &TensorDag, schedule: &Schedule, accel: &CelloConfig) -> RunReport {
    let mut backend: Box<dyn MemoryBackend> = if schedule.options.enable_chord {
        Box::new(ChordBackend::new(ChordConfig {
            capacity_words: chord_capacity_words(accel, schedule),
            word_bytes: accel.word_bytes,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: accel.riff_entries,
        }))
    } else {
        Box::new(ExplicitBackend::new(accel.word_bytes))
    };
    run_schedule(dag, schedule, accel, backend.as_mut(), "dse", "dse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_core::score::binding::{build_schedule, ScheduleOptions};
    use cello_graph::edge::TensorMeta;
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn chain(n_ops: usize, words: u64) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", words / 16),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..n_ops {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "k"]);
            } else {
                dag.add_external(
                    TensorMeta::dense("In", &["m", "k"], words),
                    &[(id, &["m", "k"])],
                );
            }
            prev = Some(id);
        }
        dag
    }

    #[test]
    fn cost_matches_full_report() {
        let dag = chain(3, 100_000);
        let s = build_schedule(&dag, ScheduleOptions::cello());
        let accel = CelloConfig::paper();
        let report = evaluate_report(&dag, &s, &accel);
        let cost = evaluate_schedule(&dag, &s, &accel);
        assert_eq!(cost.cycles, report.cycles);
        assert_eq!(cost.dram_bytes, report.dram_bytes);
        assert_eq!(cost.noc_hop_bytes, report.noc_hop_bytes);
        assert_eq!(cost.noc_hop_bytes, 0, "single node never pays the NoC");
        assert!(
            (cost.energy_pj
                - report.offchip_energy_pj
                - report.onchip_energy_pj
                - report.noc_energy_pj)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn chord_capacity_respects_partition() {
        let accel = CelloConfig::paper(); // 1 Mi words of SRAM
        let dag = chain(2, 1_000);
        let mut opts = ScheduleOptions::cello();
        opts.pipeline_buffer_words = 1 << 18;
        opts.rf_capacity_words = 1 << 14;
        let s = build_schedule(&dag, opts);
        assert_eq!(
            chord_capacity_words(&accel, &s),
            (1 << 20) - (1 << 18) - (1 << 14)
        );
        // Degenerate partitions clamp instead of underflowing.
        let mut greedy = ScheduleOptions::cello();
        greedy.pipeline_buffer_words = 2 << 20;
        let s2 = build_schedule(&dag, greedy);
        assert_eq!(chord_capacity_words(&accel, &s2), 16);
    }

    #[test]
    fn non_chord_schedules_use_explicit_backend() {
        let dag = chain(3, 50_000);
        let accel = CelloConfig::paper();
        let oracle = build_schedule(&dag, ScheduleOptions::best_intra());
        let cost = evaluate_schedule(&dag, &oracle, &accel);
        // Oracle cold traffic: 3 reads + 3 writes of 50_000 words x 4 B.
        assert_eq!(cost.dram_bytes, 6 * 50_000 * 4);
    }

    fn cost(cycles: u64, dram: u64, noc: u64, energy: f64) -> CostEstimate {
        CostEstimate {
            cycles,
            dram_bytes: dram,
            noc_hop_bytes: noc,
            energy_pj: energy,
        }
    }

    #[test]
    fn dominance_is_strict_and_consistent() {
        let a = cost(10, 10, 0, 10.0);
        let b = cost(10, 11, 0, 10.0);
        let c = cost(9, 12, 0, 10.0);
        let d = cost(10, 10, 5, 10.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "no self-dominance");
        assert!(!a.dominates(&c) && !c.dominates(&a), "incomparable pair");
        assert!(a.dominates(&d), "NoC hop-bytes is a real objective");
        assert!(!d.dominates(&a));
    }

    /// Regression: dominance must stay total under non-finite energy. A
    /// NaN-energy candidate is strictly worse than an otherwise-equal
    /// finite one (total_cmp puts NaN above +∞), so it can be pruned from
    /// the Pareto front instead of sitting there as an incomparable ghost.
    #[test]
    fn dominance_is_total_under_nan_energy() {
        let finite = cost(10, 10, 0, 10.0);
        let nan = cost(10, 10, 0, f64::NAN);
        assert!(finite.dominates(&nan), "finite energy beats NaN");
        assert!(!nan.dominates(&finite));
        assert!(!nan.dominates(&nan), "no self-dominance even for NaN");
        // +∞ behaves the same way.
        let inf = cost(10, 10, 0, f64::INFINITY);
        assert!(finite.dominates(&inf));
        assert!(inf.dominates(&nan), "total order: ∞ < NaN under total_cmp");
    }

    #[test]
    fn total_traffic_saturates() {
        let big = cost(1, u64::MAX, u64::MAX, 0.0);
        assert_eq!(big.total_traffic_bytes(), u64::MAX);
        assert_eq!(cost(1, 100, 20, 0.0).total_traffic_bytes(), 120);
    }
}

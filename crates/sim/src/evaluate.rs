//! Lightweight cost evaluation for design-space exploration.
//!
//! The DSE engine (`cello-search`) scores thousands of candidate schedules;
//! it needs traffic + roofline cycles + energy, not the full [`RunReport`]
//! with its per-phase breakdown, labels and address-map/trace machinery.
//! This module provides that path: one operand-granular walk through the
//! existing engine against the backend the candidate's options imply
//! (CHORD-backed when `enable_chord`, the explicit oracle otherwise), with
//! the on-chip SRAM **partitioned by the candidate itself** — CHORD gets
//! whatever the schedule's pipeline buffer and register file leave behind.
//! That partition is the buffer half of the paper's co-design space: a
//! schedule that asks for a smaller pipeline buffer buys CHORD capacity,
//! and vice versa.

use crate::backends::{ChordBackend, ExplicitBackend, MemoryBackend};
use crate::engine::run_schedule;
use crate::report::RunReport;
use cello_core::accel::CelloConfig;
use cello_core::chord::{ChordConfig, ChordPolicyKind};
use cello_core::score::binding::Schedule;
use cello_graph::dag::TensorDag;
use serde::{Deserialize, Serialize};

/// The three objectives the search optimizes (Pareto dimensions).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Total roofline cycles (`max(compute, memory)` per phase, summed).
    pub cycles: u64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Off-chip + on-chip energy in picojoules.
    pub energy_pj: f64,
}

impl CostEstimate {
    /// Collapses a full report to the three search objectives.
    pub fn from_report(r: &RunReport) -> Self {
        Self {
            cycles: r.cycles,
            dram_bytes: r.dram_bytes,
            energy_pj: r.offchip_energy_pj + r.onchip_energy_pj,
        }
    }

    /// Weak Pareto dominance: no worse on every objective, strictly better
    /// on at least one.
    pub fn dominates(&self, other: &CostEstimate) -> bool {
        let no_worse = self.cycles <= other.cycles
            && self.dram_bytes <= other.dram_bytes
            && self.energy_pj <= other.energy_pj;
        let better = self.cycles < other.cycles
            || self.dram_bytes < other.dram_bytes
            || self.energy_pj < other.energy_pj;
        no_worse && better
    }
}

/// CHORD capacity left for a schedule that reserves `pipeline_buffer_words`
/// and `rf_capacity_words` of the accelerator's SRAM (never below one cache
/// line's worth, so degenerate partitions still simulate).
pub fn chord_capacity_words(accel: &CelloConfig, schedule: &Schedule) -> u64 {
    let reserved = schedule.options.pipeline_buffer_words + schedule.options.rf_capacity_words;
    accel.sram_words().saturating_sub(reserved).max(16)
}

/// Evaluates one schedule on the cheap path, returning the three objectives.
///
/// Backend choice mirrors [`crate::baselines::run_config`]: CHORD (full
/// PRELUDE+RIFF) when the schedule steers operands to CHORD, the explicit
/// oracle otherwise — but CHORD is sized by [`chord_capacity_words`] rather
/// than the whole SRAM, because the candidate's own buffer split is part of
/// what the search explores.
pub fn evaluate_schedule(
    dag: &TensorDag,
    schedule: &Schedule,
    accel: &CelloConfig,
) -> CostEstimate {
    CostEstimate::from_report(&evaluate_report(dag, schedule, accel))
}

/// The full report behind [`evaluate_schedule`] (the `cello_dse` CLI uses it
/// for TSV emission; the search itself only keeps the [`CostEstimate`]).
pub fn evaluate_report(dag: &TensorDag, schedule: &Schedule, accel: &CelloConfig) -> RunReport {
    let mut backend: Box<dyn MemoryBackend> = if schedule.options.enable_chord {
        Box::new(ChordBackend::new(ChordConfig {
            capacity_words: chord_capacity_words(accel, schedule),
            word_bytes: accel.word_bytes,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: accel.riff_entries,
        }))
    } else {
        Box::new(ExplicitBackend::new(accel.word_bytes))
    };
    run_schedule(dag, schedule, accel, backend.as_mut(), "dse", "dse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_core::score::binding::{build_schedule, ScheduleOptions};
    use cello_graph::edge::TensorMeta;
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn chain(n_ops: usize, words: u64) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", words / 16),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..n_ops {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "k"]);
            } else {
                dag.add_external(
                    TensorMeta::dense("In", &["m", "k"], words),
                    &[(id, &["m", "k"])],
                );
            }
            prev = Some(id);
        }
        dag
    }

    #[test]
    fn cost_matches_full_report() {
        let dag = chain(3, 100_000);
        let s = build_schedule(&dag, ScheduleOptions::cello());
        let accel = CelloConfig::paper();
        let report = evaluate_report(&dag, &s, &accel);
        let cost = evaluate_schedule(&dag, &s, &accel);
        assert_eq!(cost.cycles, report.cycles);
        assert_eq!(cost.dram_bytes, report.dram_bytes);
        assert!((cost.energy_pj - report.offchip_energy_pj - report.onchip_energy_pj).abs() < 1e-9);
    }

    #[test]
    fn chord_capacity_respects_partition() {
        let accel = CelloConfig::paper(); // 1 Mi words of SRAM
        let dag = chain(2, 1_000);
        let mut opts = ScheduleOptions::cello();
        opts.pipeline_buffer_words = 1 << 18;
        opts.rf_capacity_words = 1 << 14;
        let s = build_schedule(&dag, opts);
        assert_eq!(
            chord_capacity_words(&accel, &s),
            (1 << 20) - (1 << 18) - (1 << 14)
        );
        // Degenerate partitions clamp instead of underflowing.
        let mut greedy = ScheduleOptions::cello();
        greedy.pipeline_buffer_words = 2 << 20;
        let s2 = build_schedule(&dag, greedy);
        assert_eq!(chord_capacity_words(&accel, &s2), 16);
    }

    #[test]
    fn non_chord_schedules_use_explicit_backend() {
        let dag = chain(3, 50_000);
        let accel = CelloConfig::paper();
        let oracle = build_schedule(&dag, ScheduleOptions::best_intra());
        let cost = evaluate_schedule(&dag, &oracle, &accel);
        // Oracle cold traffic: 3 reads + 3 writes of 50_000 words x 4 B.
        assert_eq!(cost.dram_bytes, 6 * 50_000 * 4);
    }

    #[test]
    fn dominance_is_strict_and_consistent() {
        let a = CostEstimate {
            cycles: 10,
            dram_bytes: 10,
            energy_pj: 10.0,
        };
        let b = CostEstimate {
            cycles: 10,
            dram_bytes: 11,
            energy_pj: 10.0,
        };
        let c = CostEstimate {
            cycles: 9,
            dram_bytes: 12,
            energy_pj: 10.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "no self-dominance");
        assert!(!a.dominates(&c) && !c.dominates(&a), "incomparable pair");
    }
}

//! The Table IV configuration registry and Table II capability matrix.
//!
//! Each [`ConfigKind`] pairs a scheduler (a `ScheduleOptions` preset) with a
//! buffer hierarchy (a backend), reproducing the paper's evaluated
//! combinations:
//!
//! | kind | schedule | buffer |
//! |---|---|---|
//! | `Flexagon` | best intra-layer (oracle op-by-op) | explicit |
//! | `FlexLru` / `FlexBrrip` | best intra-layer | LRU / BRRIP cache |
//! | `Flat` | adjacent pipelining (sole consumer) | explicit |
//! | `SetLike` | pipelining + delayed hold | explicit |
//! | `PreludeOnly` | best intra-layer | PRELUDE SRAM |
//! | `Cello` | SCORE | CHORD |

use crate::backends::{CacheBackend, ChordBackend, ExplicitBackend, MemoryBackend};
use crate::engine::run_schedule;
use crate::report::RunReport;
use crate::trace::AddressMap;
use cello_core::accel::CelloConfig;
use cello_core::score::binding::{build_schedule, ScheduleOptions};
use cello_graph::dag::TensorDag;
use cello_mem::cache::{BrripPolicy, LruPolicy};
use serde::{Deserialize, Serialize};

/// One Table IV row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigKind {
    /// Best intra-layer schedule + explicit buffers (oracle op-by-op).
    Flexagon,
    /// Best intra-layer schedule through an LRU cache.
    FlexLru,
    /// Best intra-layer schedule through a BRRIP cache.
    FlexBrrip,
    /// FLAT-like adjacent pipelining.
    Flat,
    /// SET-like pipelining + delayed hold.
    SetLike,
    /// PRELUDE-only SRAM (§VII-C3 ablation).
    PreludeOnly,
    /// CELLO: SCORE + CHORD.
    Cello,
}

impl ConfigKind {
    /// The five main-result configurations (Fig 12/13/14).
    pub fn main_set() -> Vec<ConfigKind> {
        vec![
            ConfigKind::Flexagon,
            ConfigKind::FlexLru,
            ConfigKind::FlexBrrip,
            ConfigKind::Flat,
            ConfigKind::Cello,
        ]
    }

    /// All seven (adds SET for Fig 16a and PRELUDE-only for Fig 16c).
    pub fn all() -> Vec<ConfigKind> {
        vec![
            ConfigKind::Flexagon,
            ConfigKind::FlexLru,
            ConfigKind::FlexBrrip,
            ConfigKind::Flat,
            ConfigKind::SetLike,
            ConfigKind::PreludeOnly,
            ConfigKind::Cello,
        ]
    }

    /// Table IV display name.
    pub fn label(&self) -> &'static str {
        match self {
            ConfigKind::Flexagon => "Flexagon",
            ConfigKind::FlexLru => "Flex+LRU",
            ConfigKind::FlexBrrip => "Flex+BRRIP",
            ConfigKind::Flat => "FLAT",
            ConfigKind::SetLike => "SET",
            ConfigKind::PreludeOnly => "PRELUDE-only",
            ConfigKind::Cello => "CELLO",
        }
    }

    /// The scheduler preset for this configuration.
    pub fn schedule_options(&self) -> ScheduleOptions {
        match self {
            ConfigKind::Flexagon | ConfigKind::FlexLru | ConfigKind::FlexBrrip => {
                ScheduleOptions::best_intra()
            }
            ConfigKind::Flat => ScheduleOptions::flat(),
            ConfigKind::SetLike => ScheduleOptions::set_like(),
            ConfigKind::PreludeOnly => ScheduleOptions::prelude_only(),
            ConfigKind::Cello => ScheduleOptions::cello(),
        }
    }
}

/// Table II capability row (used by the `tab02_score` harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Intra-operation reuse.
    pub intra_op: bool,
    /// Parallel multicast.
    pub parallel_multicast: bool,
    /// Inter-operation pipelining.
    pub pipelining: bool,
    /// Delayed-hold dependencies.
    pub delayed_hold: bool,
    /// Delayed-writeback dependencies.
    pub delayed_writeback: bool,
    /// Swizzle minimization.
    pub swizzle_minimization: bool,
    /// Partly implicit buffer.
    pub part_implicit_buffer: bool,
}

impl ConfigKind {
    /// Capability flags, derived from the schedule options and backend.
    pub fn capabilities(&self) -> Capabilities {
        let o = self.schedule_options();
        use cello_core::score::binding::PipelineScope;
        Capabilities {
            intra_op: true,
            parallel_multicast: o.enable_multicast,
            pipelining: o.scope != PipelineScope::None,
            delayed_hold: o.enable_hold,
            delayed_writeback: o.enable_chord && *self == ConfigKind::Cello,
            swizzle_minimization: *self == ConfigKind::Cello,
            part_implicit_buffer: matches!(self, ConfigKind::Cello | ConfigKind::PreludeOnly),
        }
    }
}

/// Runs one configuration on one workload DAG under `accel`.
///
/// ```
/// use cello_core::accel::CelloConfig;
/// use cello_sim::baselines::{run_config, ConfigKind};
/// use cello_workloads::gcn::{build_gcn_dag, GcnParams};
/// use cello_workloads::datasets::CORA;
///
/// let dag = build_gcn_dag(&GcnParams::from_dataset(&CORA, 1));
/// let accel = CelloConfig::paper();
/// let cello = run_config(&dag, ConfigKind::Cello, &accel, "cora");
/// let flat = run_config(&dag, ConfigKind::Flat, &accel, "cora");
/// // On GNNs the single intermediate pipelines: CELLO ties FLAT (Fig 13).
/// assert_eq!(cello.dram_bytes, flat.dram_bytes);
/// ```
pub fn run_config(
    dag: &TensorDag,
    kind: ConfigKind,
    accel: &CelloConfig,
    workload: &str,
) -> RunReport {
    let schedule = build_schedule(dag, kind.schedule_options());
    debug_assert!(schedule.validate(dag).is_ok());
    let mut backend = backend_for(dag, kind, accel);
    run_schedule(
        dag,
        &schedule,
        accel,
        backend.as_mut(),
        kind.label(),
        workload,
    )
}

/// The buffer hierarchy (Table IV column) a configuration runs against.
/// Exposed so multi-node harnesses (`crate::scaling`) can pair a
/// partitioned schedule with the same backend `run_config` would pick.
pub fn backend_for(
    dag: &TensorDag,
    kind: ConfigKind,
    accel: &CelloConfig,
) -> Box<dyn MemoryBackend> {
    match kind {
        ConfigKind::Flexagon | ConfigKind::Flat | ConfigKind::SetLike => {
            Box::new(ExplicitBackend::new(accel.word_bytes))
        }
        ConfigKind::FlexLru => Box::new(CacheBackend::<LruPolicy>::new(
            accel.cache_config(),
            AddressMap::build(dag, accel.word_bytes),
            accel.word_bytes,
        )),
        ConfigKind::FlexBrrip => Box::new(CacheBackend::<BrripPolicy>::new(
            accel.cache_config(),
            AddressMap::build(dag, accel.word_bytes),
            accel.word_bytes,
        )),
        ConfigKind::PreludeOnly => Box::new(ChordBackend::new(accel.prelude_only_config())),
        ConfigKind::Cello => Box::new(ChordBackend::new(accel.chord_config())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_workloads::cg::{build_cg_dag, CgParams};
    use cello_workloads::gcn::{build_gcn_dag, GcnParams};
    use cello_workloads::resnet::{build_resnet_block_dag, ResNetBlockParams};

    fn small_cg(n: u64, iterations: u32) -> TensorDag {
        build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n,
            nprime: n,
            iterations,
            a_occupancy: None,
        })
    }

    /// Core paper result: on CG, CELLO moves strictly less DRAM data than
    /// FLAT, which (on CG) equals Flexagon; caches land in between or worse.
    #[test]
    fn cg_traffic_ordering() {
        let dag = small_cg(16, 4);
        let accel = CelloConfig::paper();
        let flexagon = run_config(&dag, ConfigKind::Flexagon, &accel, "cg");
        let flat = run_config(&dag, ConfigKind::Flat, &accel, "cg");
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "cg");
        assert_eq!(
            flat.dram_bytes, flexagon.dram_bytes,
            "FLAT degenerates to op-by-op on CG"
        );
        assert!(
            cello.dram_bytes < flexagon.dram_bytes / 2,
            "CELLO {} vs Flexagon {}",
            cello.dram_bytes,
            flexagon.dram_bytes
        );
    }

    /// CELLO is at least as fast as every baseline on CG and reaches the
    /// paper's >2x regime against the explicit oracle on a buffer-friendly
    /// problem size.
    #[test]
    fn cg_speedup_direction() {
        let dag = small_cg(16, 4);
        let accel = CelloConfig::paper();
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "cg");
        for kind in [ConfigKind::Flexagon, ConfigKind::Flat] {
            let base = run_config(&dag, kind, &accel, "cg");
            let speedup = cello.speedup_over(&base);
            assert!(speedup > 2.0, "{}: speedup {speedup}", kind.label());
        }
    }

    /// On GNNs the intermediate is purely pipelineable: CELLO ties FLAT, and
    /// both beat the op-by-op oracle (Fig 13).
    #[test]
    fn gnn_cello_matches_flat() {
        let dag = build_gcn_dag(&GcnParams {
            vertices: 2708,
            nnz: 9464,
            features: 1433,
            outputs: 7,
            layers: 1,
        });
        let accel = CelloConfig::paper();
        let flat = run_config(&dag, ConfigKind::Flat, &accel, "gcn");
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "gcn");
        let flexagon = run_config(&dag, ConfigKind::Flexagon, &accel, "gcn");
        assert_eq!(cello.dram_bytes, flat.dram_bytes, "CELLO == FLAT on GNN");
        assert!(flat.dram_bytes < flexagon.dram_bytes);
    }

    /// On ResNet, SET (delayed hold) ties CELLO; FLAT cannot fuse the skip
    /// (Fig 16a).
    #[test]
    fn resnet_set_matches_cello() {
        let dag = build_resnet_block_dag(&ResNetBlockParams::conv3x());
        let accel = CelloConfig::paper().with_word_bytes(2);
        let set = run_config(&dag, ConfigKind::SetLike, &accel, "resnet");
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "resnet");
        let flat = run_config(&dag, ConfigKind::Flat, &accel, "resnet");
        assert_eq!(set.dram_bytes, cello.dram_bytes, "SET == CELLO on ResNet");
        assert!(set.dram_bytes < flat.dram_bytes);
    }

    /// PRELUDE-only sits between the explicit oracle and full CELLO on CG
    /// (Fig 16c).
    #[test]
    fn prelude_only_is_intermediate() {
        let dag = small_cg(16, 4);
        let accel = CelloConfig::paper();
        let flexagon = run_config(&dag, ConfigKind::Flexagon, &accel, "cg");
        let prelude = run_config(&dag, ConfigKind::PreludeOnly, &accel, "cg");
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "cg");
        assert!(prelude.dram_bytes < flexagon.dram_bytes);
        assert!(cello.dram_bytes <= prelude.dram_bytes);
    }

    /// Caches capture some reuse on small problems but lose to CHORD.
    #[test]
    fn caches_worse_than_cello() {
        let dag = small_cg(4, 3);
        let accel = CelloConfig::paper();
        let lru = run_config(&dag, ConfigKind::FlexLru, &accel, "cg");
        let brrip = run_config(&dag, ConfigKind::FlexBrrip, &accel, "cg");
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "cg");
        assert!(
            cello.dram_bytes < lru.dram_bytes,
            "CELLO {} LRU {}",
            cello.dram_bytes,
            lru.dram_bytes
        );
        assert!(cello.dram_bytes < brrip.dram_bytes);
    }

    /// Table II capability matrix: only CELLO covers everything.
    #[test]
    fn capability_matrix() {
        let cello = ConfigKind::Cello.capabilities();
        assert!(cello.delayed_writeback && cello.delayed_hold && cello.pipelining);
        let flat = ConfigKind::Flat.capabilities();
        assert!(flat.pipelining && !flat.delayed_hold && !flat.delayed_writeback);
        let set = ConfigKind::SetLike.capabilities();
        assert!(set.delayed_hold && !set.delayed_writeback);
        let flexagon = ConfigKind::Flexagon.capabilities();
        assert!(flexagon.intra_op && !flexagon.pipelining);
    }

    /// Global cold lower bound: no configuration can move less than one pass
    /// over externals + terminal outputs; CELLO respects it.
    #[test]
    fn cello_respects_cold_bound() {
        let dag = small_cg(16, 3);
        let accel = CelloConfig::paper();
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "cg");
        let wb = accel.word_bytes as u64;
        let ext_bytes: u64 = dag.externals().iter().map(|e| e.meta.words * wb).sum();
        // Terminal outputs: tensors with no consumers.
        let term_bytes: u64 = dag
            .nodes()
            .filter(|(id, _)| dag.out_edges(*id).is_empty())
            .map(|(_, n)| n.output.words * wb)
            .sum();
        // Single-use externals all stream once; terminals written once.
        assert!(cello.dram_bytes >= term_bytes);
        assert!(cello.dram_bytes <= ext_bytes * 4 + term_bytes + cello.dram_bytes / 2);
    }
}

//! Model-time span trees for finished runs.
//!
//! Renders a [`RunReport`] as a `cello_obs` span tree in **cycles-model
//! time**: every timestamp/duration is simulated cycles converted to
//! microseconds at the configured frequency, not wall clock. Phases tile
//! the root back-to-back in exactly the order the engine walked them, so
//! opening `cello_run --trace-out` output in Perfetto gives the phase-level
//! flame view of where modeled time (and each phase's DRAM bytes, NoC
//! hop-words, and CHORD hit/miss behavior) went.
//!
//! Invariants the acceptance tests pin:
//! - child durations sum to the root duration (= `RunReport::seconds` in
//!   µs) up to f64 rounding, because both derive from the same integer
//!   cycle counts;
//! - each phase's `dram_bytes` arg is copied verbatim from
//!   `RunReport::phase_dram_bytes`.

use crate::engine::noc_cycles;
use crate::report::RunReport;
use cello_core::accel::CelloConfig;
use cello_obs::{ArgValue, SpanNode};

/// Converts `cycles` at `accel`'s frequency to model-time microseconds.
fn cycles_us(cycles: u64, accel: &CelloConfig) -> f64 {
    cycles as f64 / accel.freq_hz * 1e6
}

/// Builds the model-time span tree for one run: a root named
/// `config:workload` spanning the whole run, one child per phase (plus a
/// final `drain` child when the backend flushed residual state on finish).
pub fn report_span(report: &RunReport, accel: &CelloConfig) -> SpanNode {
    let mut root = SpanNode::new(format!("{}:{}", report.config, report.workload))
        .arg("cycles", report.cycles)
        .arg("dram_bytes", report.dram_bytes)
        .arg("noc_hop_bytes", report.noc_hop_bytes)
        .arg("nodes", report.nodes);
    root.dur_us = report.seconds * 1e6;

    let mut at_cycles: u64 = 0;
    for (i, &(compute, mem)) in report.phase_cycles.iter().enumerate() {
        // The engine pushes planned phases first, then at most one drain
        // entry — which is exactly the tail with no hop-words recorded.
        let is_drain = i >= report.phase_noc_hop_words.len();
        let hop_words = if is_drain {
            0
        } else {
            report.phase_noc_hop_words[i]
        };
        let noc = noc_cycles(hop_words, accel);
        let dur_cycles = compute.max(mem) + noc;
        let mut child = SpanNode {
            name: if is_drain {
                "drain".to_string()
            } else {
                format!("phase-{i}")
            },
            ts_us: cycles_us(at_cycles, accel),
            dur_us: cycles_us(dur_cycles, accel),
            args: vec![
                ("compute_cycles".to_string(), ArgValue::U64(compute)),
                ("mem_cycles".to_string(), ArgValue::U64(mem)),
                ("noc_cycles".to_string(), ArgValue::U64(noc)),
                ("noc_hop_words".to_string(), ArgValue::U64(hop_words)),
            ],
            children: Vec::new(),
        };
        if let Some(&bytes) = report.phase_dram_bytes.get(i) {
            child
                .args
                .push(("dram_bytes".to_string(), ArgValue::U64(bytes)));
        }
        if let Some(stats) = report.phase_stats.get(i) {
            child.args.extend([
                (
                    "dram_read_bytes".to_string(),
                    ArgValue::U64(stats.dram_read_bytes),
                ),
                (
                    "dram_write_bytes".to_string(),
                    ArgValue::U64(stats.dram_write_bytes),
                ),
                ("chord_hits".to_string(), ArgValue::U64(stats.hits)),
                ("chord_misses".to_string(), ArgValue::U64(stats.misses)),
                (
                    "chord_writebacks".to_string(),
                    ArgValue::U64(stats.writebacks),
                ),
            ]);
        }
        root.children.push(child);
        at_cycles += dur_cycles;
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::run_config;
    use crate::ConfigKind;
    use cello_core::score::binding::{build_schedule, ScheduleOptions};
    use cello_graph::dag::TensorDag;
    use cello_workloads::cg::{build_cg_dag, CgParams};

    fn small_cg() -> TensorDag {
        build_cg_dag(&CgParams {
            m: 20_000,
            occupancy: 4.0,
            a_payload_words: 2 * 80_000 + 20_001,
            n: 16,
            nprime: 16,
            iterations: 3,
            a_occupancy: None,
        })
    }

    #[test]
    fn phase_spans_tile_the_root() {
        let dag = small_cg();
        let accel = CelloConfig::paper();
        let r = run_config(&dag, ConfigKind::Cello, &accel, "cg");
        let span = report_span(&r, &accel);
        assert_eq!(span.children.len(), r.phase_cycles.len());
        // Durations sum to the root (same integer cycles underneath).
        let sum: f64 = span.children.iter().map(|c| c.dur_us).sum();
        assert!(
            (sum - span.dur_us).abs() <= span.dur_us * 1e-9 + 1e-9,
            "{sum} vs {}",
            span.dur_us
        );
        // Phases are contiguous: each starts where the previous ended.
        let mut at = 0.0;
        for child in &span.children {
            assert!((child.ts_us - at).abs() < 1e-6);
            at += child.dur_us;
        }
        // dram_bytes args are verbatim copies.
        for (i, child) in span.children.iter().enumerate() {
            assert_eq!(
                child.get_arg("dram_bytes"),
                Some(&ArgValue::U64(r.phase_dram_bytes[i]))
            );
        }
    }

    #[test]
    fn drain_phase_is_labelled() {
        let dag = small_cg();
        let accel = CelloConfig::paper();
        let schedule = build_schedule(&dag, ScheduleOptions::cello());
        let mut backend = crate::backends::ChordBackend::new(cello_core::ChordConfig {
            capacity_words: crate::evaluate::chord_capacity_words(&accel, &schedule),
            word_bytes: accel.word_bytes,
            policy: cello_core::ChordPolicyKind::PreludeRiff,
            max_entries: accel.riff_entries,
        });
        let r = crate::run_schedule(&dag, &schedule, &accel, &mut backend, "CELLO", "cg");
        let span = report_span(&r, &accel);
        if r.phase_cycles.len() > r.phase_noc_hop_words.len() {
            assert_eq!(span.children.last().unwrap().name, "drain");
        }
        assert!(span
            .children
            .iter()
            .all(|c| c.get_arg("chord_hits").is_some()));
    }
}

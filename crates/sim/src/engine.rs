//! The phase-walking execution engine.
//!
//! Walks a SCORE [`Schedule`] cluster by cluster and issues operand-granular
//! traffic to a [`MemoryBackend`]:
//!
//! - edges *realized* as pipelining never reach the backend (the pipeline
//!   buffer serves them on-chip);
//! - a tensor read by several ops of the same cluster is fetched **once**
//!   (parallel multicast over the NoC);
//! - every read/write carries the RIFF metadata SCORE derived — uses
//!   remaining after this phase and distance to the next use — which is how
//!   the CHORD backend gets its priorities;
//! - phase time is `max(compute, memory)` cycles: compute = cluster MACs
//!   over the PE array, memory = phase DRAM bytes over the DRAM bandwidth
//!   (§VII-A1's "stalls due to memory bandwidth dominate").

use crate::backends::{MemoryBackend, TensorRequest};
use crate::energy::{offchip_energy_pj, onchip_energy_pj};
use crate::report::RunReport;
use cello_core::accel::CelloConfig;
use cello_core::score::binding::Schedule;
use cello_graph::dag::{NodeId, TensorDag};
use cello_mem::model::AreaEnergyModel;
use std::collections::{BTreeMap, BTreeSet};

/// Per-tensor consumer sites visible to the backend (realized edges removed),
/// one entry per consuming phase: `(phase index, op position of first use)`.
type ConsumerSites = BTreeMap<String, Vec<(usize, usize)>>;

fn consumer_sites(dag: &TensorDag, schedule: &Schedule) -> ConsumerSites {
    let order = schedule.order();
    let pos: BTreeMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let phase_of = schedule.phase_of();
    let mut sites: ConsumerSites = BTreeMap::new();
    let mut push = |name: &str, consumer: NodeId| {
        let (ph, p) = (phase_of[consumer.0], pos[&consumer]);
        let list = sites.entry(name.to_string()).or_default();
        match list.iter_mut().find(|(lph, _)| *lph == ph) {
            Some((_, first)) => *first = (*first).min(p),
            None => list.push((ph, p)),
        }
    };
    for (eid, edge) in dag.edges() {
        if schedule.realized[eid.0] {
            continue;
        }
        let name = &dag.node(NodeId(edge.src)).output.name;
        push(name, NodeId(edge.dst));
    }
    for ext in dag.externals() {
        for &(consumer, _) in &ext.consumers {
            push(&ext.meta.name, NodeId(consumer));
        }
    }
    for list in sites.values_mut() {
        list.sort();
    }
    sites
}

fn future_use(sites: &ConsumerSites, name: &str, phase: usize, op_pos: usize) -> (u32, u32) {
    let Some(list) = sites.get(name) else {
        return (0, u32::MAX);
    };
    let future: Vec<&(usize, usize)> = list.iter().filter(|(ph, _)| *ph > phase).collect();
    let freq = future.len() as u32;
    let dist = future
        .first()
        .map(|(_, p)| (*p - op_pos.min(*p)) as u32)
        .unwrap_or(u32::MAX);
    (freq, dist)
}

/// Runs `schedule` for `dag` on `backend` under `accel`, returning the
/// traffic/time/energy report.
pub fn run_schedule(
    dag: &TensorDag,
    schedule: &Schedule,
    accel: &CelloConfig,
    backend: &mut dyn MemoryBackend,
    config_label: &str,
    workload: &str,
) -> RunReport {
    let order = schedule.order();
    let pos: BTreeMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let sites = consumer_sites(dag, schedule);
    // Per-node external inputs.
    let mut node_exts: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (xi, ext) in dag.externals().iter().enumerate() {
        for &(consumer, _) in &ext.consumers {
            node_exts.entry(consumer).or_default().push(xi);
        }
    }

    let mut phase_cycles: Vec<(u64, u64)> = Vec::with_capacity(schedule.phases.len());
    let mut total_cycles: u64 = 0;
    let mut prev_stats = backend.stats();

    for (pi, phase) in schedule.phases.iter().enumerate() {
        let mut phase_macs: u64 = 0;
        let mut read_this_phase: BTreeSet<&str> = BTreeSet::new();
        for &op in &phase.ops {
            let node = dag.node(op);
            phase_macs += node.macs;
            let op_pos = pos[&op];

            // Producer inputs via unrealized edges.
            for eid in dag.in_edges(op) {
                if schedule.realized[eid.0] {
                    continue;
                }
                let producer = dag.node(NodeId(dag.edge(eid).src));
                let name = producer.output.name.as_str();
                if !read_this_phase.insert(name) {
                    continue; // same-phase multicast: one NoC fetch
                }
                let (freq, dist) = future_use(&sites, name, pi, op_pos);
                backend.read(&TensorRequest {
                    name,
                    words: producer.output.words,
                    binding: schedule.binding_of(name),
                    external: false,
                    freq_after: freq,
                    dist_after: dist,
                });
            }
            // External inputs.
            if let Some(exts) = node_exts.get(&op.0) {
                for &xi in exts {
                    let meta = &dag.externals()[xi].meta;
                    let name = meta.name.as_str();
                    if !read_this_phase.insert(name) {
                        continue;
                    }
                    let (freq, dist) = future_use(&sites, name, pi, op_pos);
                    backend.read(&TensorRequest {
                        name,
                        words: meta.words,
                        binding: schedule.binding_of(name),
                        external: true,
                        freq_after: freq,
                        dist_after: dist,
                    });
                }
            }
            // Output.
            let out = &node.output;
            let (freq, dist) = future_use(&sites, &out.name, pi, op_pos);
            backend.write(&TensorRequest {
                name: &out.name,
                words: out.words,
                binding: schedule.binding_of(&out.name),
                external: false,
                freq_after: freq,
                dist_after: dist,
            });
        }

        let now = backend.stats();
        let phase_dram = now.dram_bytes() - prev_stats.dram_bytes();
        prev_stats = now;
        let compute = phase_macs.div_ceil(accel.pe_count.max(1));
        let mem = accel.dram.transfer_cycles(phase_dram, accel.freq_hz);
        phase_cycles.push((compute, mem));
        total_cycles += compute.max(mem);
    }

    backend.finish();
    let final_stats = backend.stats();
    let drain = final_stats.dram_bytes() - prev_stats.dram_bytes();
    if drain > 0 {
        let mem = accel.dram.transfer_cycles(drain, accel.freq_hz);
        phase_cycles.push((0, mem));
        total_cycles += mem;
    }

    let macs: u64 = dag.nodes().map(|(_, n)| n.macs).sum();
    let seconds = total_cycles as f64 / accel.freq_hz;
    let model = AreaEnergyModel::default();
    RunReport {
        config: config_label.to_string(),
        workload: workload.to_string(),
        cycles: total_cycles,
        seconds,
        macs,
        dram_bytes: final_stats.dram_bytes(),
        offchip_energy_pj: offchip_energy_pj(&final_stats, accel.dram.energy_pj_per_byte),
        onchip_energy_pj: onchip_energy_pj(
            &final_stats,
            backend.buffer_kind(),
            accel.sram_bytes,
            backend.sram_access_bytes(),
            &model,
        ),
        stats: final_stats,
        phase_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::ExplicitBackend;
    use cello_core::score::binding::{build_schedule, ScheduleOptions};
    use cello_graph::edge::TensorMeta;
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn chain(n_ops: usize, words: u64) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", words / 16),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..n_ops {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "k"]);
            } else {
                dag.add_external(
                    TensorMeta::dense("In", &["m", "k"], words),
                    &[(id, &["m", "k"])],
                );
            }
            prev = Some(id);
        }
        dag
    }

    #[test]
    fn best_intra_traffic_is_cold_per_op() {
        let dag = chain(3, 1600);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        // op0: read In (1600w) write T0; op1: read T0 write T1; op2: read T1 write T2.
        // Total = 3 reads + 3 writes of 1600 words × 4 B.
        assert_eq!(r.dram_bytes, 6 * 1600 * 4);
        assert_eq!(r.phase_cycles.len(), 3);
    }

    #[test]
    fn pipelined_chain_saves_intermediates() {
        let dag = chain(3, 1600);
        // CELLO fuses the whole chain: only In is read and T2 written.
        let schedule = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(schedule.phases.len(), 1, "{:?}", schedule.phases);
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "CELLO", "chain");
        assert_eq!(r.dram_bytes, 2 * 1600 * 4);
    }

    #[test]
    fn timing_is_roofline_max() {
        let dag = chain(2, 1 << 20);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        for &(c, m) in &r.phase_cycles {
            assert!(r.cycles >= c.max(m));
        }
        let expected: u64 = r.phase_cycles.iter().map(|&(c, m)| c.max(m)).sum();
        assert_eq!(r.cycles, expected);
    }

    #[test]
    fn multicast_read_deduped_within_phase() {
        // Diamond: p multicasts T0 to a and b; both consume it in one phase.
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 1000),
                RankExtent::dense("k", 8),
                RankExtent::dense("n", 8),
            ],
        );
        let mut dag = TensorDag::new();
        let t = |n: &str| TensorMeta::dense(n, &["m", "n"], 8000);
        let p = dag.add_op("p", spec.clone(), OpKind::TensorMac, t("T0"));
        let a = dag.add_op("a", spec.clone(), OpKind::TensorMac, t("T1"));
        let b = dag.add_op("b", spec.clone(), OpKind::TensorMac, t("T2"));
        dag.add_edge(p, a, &["m", "k"]);
        dag.add_edge(p, b, &["m", "k"]);
        dag.add_external(
            TensorMeta::dense("In", &["m", "k"], 8000),
            &[(p, &["m", "k"])],
        );
        let schedule = build_schedule(&dag, ScheduleOptions::cello());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "CELLO", "diamond");
        // a and b fuse with p (multicast): T0 pipelined once to both.
        // Traffic = In read + T1 + T2 writes.
        assert_eq!(r.dram_bytes, 3 * 8000 * 4, "phases {:?}", schedule.phases);
    }

    #[test]
    fn report_totals_consistent() {
        let dag = chain(4, 4000);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        assert_eq!(r.macs, dag.nodes().map(|(_, n)| n.macs).sum::<u64>());
        assert!(r.seconds > 0.0);
        assert!(r.gfpmuls_per_sec() > 0.0);
        assert!((r.offchip_energy_pj - r.dram_bytes as f64 * 31.2).abs() < 1e-6);
    }
}

//! The phase-walking execution engine.
//!
//! Replays a [`PhasePlan`] (see [`crate::phases`]) cluster by cluster and
//! issues its operand-granular traffic to a [`MemoryBackend`]:
//!
//! - edges *realized* as pipelining never reach the backend (the pipeline
//!   buffer serves them on-chip);
//! - a tensor read by several ops of the same cluster is fetched **once**
//!   (parallel multicast over the NoC);
//! - every read/write carries the RIFF metadata SCORE derived — uses
//!   remaining after this phase and distance to the next use, biased by any
//!   searched [`cello_core::chord::PriorityBias`] — which is how the CHORD
//!   backend gets its priorities;
//! - phase time is `max(compute, memory)` cycles: compute = cluster MACs
//!   over the PE array, memory = phase DRAM bytes over the DRAM bandwidth
//!   (§VII-A1's "stalls due to memory bandwidth dominate"). Under a
//!   non-trivial [`cello_core::TransferTuning`] the memory term shrinks to
//!   the *exposed* transfer — inbound bytes prefetched behind earlier
//!   phases are hidden by the [`crate::overlap::OverlapLedger`], and NoC
//!   time folds into the same `max`;
//! - multi-node schedules (§V-B, [`cello_core::Partition`]) are scored
//!   through the same walk: rank partitioning slices every tensor carrying
//!   the partitioned rank to a per-node tile (`words / nodes`), charges
//!   broadcast hops for replicated-tensor reads and reduce hops for
//!   contraction partials, and divides cluster compute across nodes; stage
//!   partitioning keeps full footprints and ships every realized
//!   (pipelined) intermediate through the NoC — the Fig 8 naive strategy.
//!   NoC time serializes with each phase (contention-free model), and DRAM
//!   traffic/energy aggregate across nodes.
//!
//! All of the slicing/multicast/NoC accounting lives in
//! [`crate::phases::plan_phases`], shared with the `cello-search` analytic
//! surrogate, so the exact simulator and the cheap prefilter tier can never
//! disagree about footprints — only about buffer behavior.

use crate::backends::{MemoryBackend, TensorRequest};
use crate::energy::{noc_energy_pj, offchip_energy_pj, onchip_energy_pj};
use crate::overlap::OverlapLedger;
use crate::phases::{plan_phases, PhasePlan};
use crate::report::RunReport;
use cello_core::accel::CelloConfig;
use cello_core::score::binding::Schedule;
use cello_graph::dag::TensorDag;
use cello_mem::model::AreaEnergyModel;

/// Runs `schedule` for `dag` on `backend` under `accel`, returning the
/// traffic/time/energy report.
pub fn run_schedule(
    dag: &TensorDag,
    schedule: &Schedule,
    accel: &CelloConfig,
    backend: &mut dyn MemoryBackend,
    config_label: &str,
    workload: &str,
) -> RunReport {
    let plan: PhasePlan = plan_phases(dag, schedule);

    let mut phase_cycles: Vec<(u64, u64)> = Vec::with_capacity(plan.phases.len());
    let mut phase_dram_bytes: Vec<u64> = Vec::with_capacity(plan.phases.len() + 1);
    let mut phase_stats: Vec<cello_mem::stats::AccessStats> =
        Vec::with_capacity(plan.phases.len() + 1);
    let mut phase_noc_hop_words: Vec<u64> = Vec::with_capacity(plan.phases.len());
    let mut phase_total_cycles: Vec<u64> = Vec::with_capacity(plan.phases.len() + 1);
    let mut total_cycles: u64 = 0;
    let mut total_noc_hop_words: u64 = 0;
    let mut prev_stats = backend.stats();
    // Per-phase SRAM repartition (§V/§VI at phase granularity): re-derive
    // CHORD's capacity per phase and resize at the boundary — dirty tails a
    // shrink evicts become DRAM writebacks charged to the entering phase.
    // Uniform/global splits never take this path, so every single-split
    // schedule replays bit-identically to the pre-repartition engine.
    let repartition = schedule.repartition_active();
    // Transfer timing: the ledger hides prefetched inbound bytes behind
    // earlier phases. A depth-0 tuning (the default) reproduces
    // `max(compute, mem) + noc` bit-identically.
    let mut ledger = OverlapLedger::new(schedule.transfer, accel);
    // Overbook spill (see `crate::phases`): planned per access, charged here
    // as outbound DRAM traffic — overflow writebacks happen mid-phase, so no
    // prefetch depth can hide them. Zero whenever the schedule doesn't
    // overbook, keeping the pre-overbook engine bit for bit.
    let mut spill_bytes_total: u64 = 0;

    for (pi, phase) in plan.phases.iter().enumerate() {
        let _span = cello_obs::span!(
            "phase",
            idx = pi,
            ops = phase.compute_macs,
            noc_hop_words = phase.noc_hop_words,
        );
        if repartition {
            backend.phase_boundary(crate::evaluate::phase_chord_capacity_words(
                accel,
                &phase.split,
                &schedule.transfer,
            ));
        }
        for access in &phase.accesses {
            let req = TensorRequest {
                name: &access.name,
                words: access.words,
                binding: access.binding,
                external: access.external,
                freq_after: access.freq_after,
                dist_after: access.dist_after,
            };
            if access.write {
                backend.write(&req);
            } else {
                backend.read(&req);
            }
        }

        let now = backend.stats();
        let delta = now.delta_since(&prev_stats);
        let spill_bytes = phase.spill_words() * accel.word_bytes as u64;
        spill_bytes_total += spill_bytes;
        let phase_dram = delta.dram_bytes() + spill_bytes;
        prev_stats = now;
        let compute = phase.compute_macs.div_ceil(accel.pe_count.max(1));
        let timing = ledger.phase(
            compute,
            delta.dram_read_bytes,
            delta.dram_write_bytes + spill_bytes,
            noc_cycles(phase.noc_hop_words, accel),
        );
        phase_stats.push(delta);
        phase_cycles.push((compute, timing.exposed_mem_cycles));
        phase_dram_bytes.push(phase_dram);
        phase_noc_hop_words.push(phase.noc_hop_words);
        total_noc_hop_words += phase.noc_hop_words;
        phase_total_cycles.push(timing.cycles);
        total_cycles += timing.cycles;
    }

    backend.finish();
    let final_stats = backend.stats();
    let drain = final_stats.dram_bytes() - prev_stats.dram_bytes();
    if drain > 0 {
        // The terminal drain has no later compute to hide behind: fully
        // exposed at every prefetch depth.
        let mem = ledger.drain(drain);
        phase_cycles.push((0, mem));
        phase_dram_bytes.push(drain);
        phase_stats.push(final_stats.delta_since(&prev_stats));
        phase_total_cycles.push(mem);
        total_cycles += mem;
    }

    // Aggregate per-node traffic across the mesh: rank slicing simulated
    // one node's share, stage splitting already saw the whole problem.
    let nodes = plan.nodes;
    let agg = plan.dram_agg;
    let noc_hop_bytes = total_noc_hop_words * accel.word_bytes as u64;
    let macs: u64 = dag.nodes().map(|(_, n)| n.macs).sum();
    let seconds = total_cycles as f64 / accel.freq_hz;
    let model = AreaEnergyModel::default();
    RunReport {
        config: config_label.to_string(),
        workload: workload.to_string(),
        cycles: total_cycles,
        seconds,
        macs,
        dram_bytes: (final_stats.dram_bytes() + spill_bytes_total) * agg,
        nodes,
        noc_hop_bytes,
        offchip_energy_pj: (offchip_energy_pj(&final_stats, accel.dram.energy_pj_per_byte)
            + spill_bytes_total as f64 * accel.dram.energy_pj_per_byte)
            * agg as f64,
        onchip_energy_pj: onchip_energy_pj(
            &final_stats,
            backend.buffer_kind(),
            accel.sram_bytes,
            backend.sram_access_bytes(),
            &model,
        ) * agg as f64,
        noc_energy_pj: noc_energy_pj(noc_hop_bytes),
        stats: final_stats,
        phase_cycles,
        phase_dram_bytes,
        phase_stats,
        phase_noc_hop_words,
        phase_total_cycles,
    }
}

/// Cycles an inter-node exchange of `hop_words` word-hops costs, serialized
/// against the phase (contention-free link model). Public because the
/// `cello-search` surrogate charges NoC time through this same formula —
/// one conversion, so the two evaluation tiers cannot drift on it.
pub fn noc_cycles(hop_words: u64, accel: &CelloConfig) -> u64 {
    if hop_words == 0 {
        return 0;
    }
    let bytes = (hop_words * accel.word_bytes as u64) as f64;
    (bytes / accel.noc_bandwidth_bytes_per_sec * accel.freq_hz).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::ExplicitBackend;
    use cello_core::score::binding::{build_schedule, ScheduleOptions};
    use cello_graph::edge::TensorMeta;
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn chain(n_ops: usize, words: u64) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", words / 16),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..n_ops {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "k"]);
            } else {
                dag.add_external(
                    TensorMeta::dense("In", &["m", "k"], words),
                    &[(id, &["m", "k"])],
                );
            }
            prev = Some(id);
        }
        dag
    }

    #[test]
    fn best_intra_traffic_is_cold_per_op() {
        let dag = chain(3, 1600);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        // op0: read In (1600w) write T0; op1: read T0 write T1; op2: read T1 write T2.
        // Total = 3 reads + 3 writes of 1600 words × 4 B.
        assert_eq!(r.dram_bytes, 6 * 1600 * 4);
        assert_eq!(r.phase_cycles.len(), 3);
    }

    #[test]
    fn pipelined_chain_saves_intermediates() {
        let dag = chain(3, 1600);
        // CELLO fuses the whole chain: only In is read and T2 written.
        let schedule = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(schedule.phases.len(), 1, "{:?}", schedule.phases);
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "CELLO", "chain");
        assert_eq!(r.dram_bytes, 2 * 1600 * 4);
    }

    #[test]
    fn timing_is_roofline_max() {
        let dag = chain(2, 1 << 20);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        for &(c, m) in &r.phase_cycles {
            assert!(r.cycles >= c.max(m));
        }
        let expected: u64 = r.phase_cycles.iter().map(|&(c, m)| c.max(m)).sum();
        assert_eq!(r.cycles, expected);
    }

    #[test]
    fn multicast_read_deduped_within_phase() {
        // Diamond: p multicasts T0 to a and b; both consume it in one phase.
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 1000),
                RankExtent::dense("k", 8),
                RankExtent::dense("n", 8),
            ],
        );
        let mut dag = TensorDag::new();
        let t = |n: &str| TensorMeta::dense(n, &["m", "n"], 8000);
        let p = dag.add_op("p", spec.clone(), OpKind::TensorMac, t("T0"));
        let a = dag.add_op("a", spec.clone(), OpKind::TensorMac, t("T1"));
        let b = dag.add_op("b", spec.clone(), OpKind::TensorMac, t("T2"));
        dag.add_edge(p, a, &["m", "k"]);
        dag.add_edge(p, b, &["m", "k"]);
        dag.add_external(
            TensorMeta::dense("In", &["m", "k"], 8000),
            &[(p, &["m", "k"])],
        );
        let schedule = build_schedule(&dag, ScheduleOptions::cello());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "CELLO", "diamond");
        // a and b fuse with p (multicast): T0 pipelined once to both.
        // Traffic = In read + T1 + T2 writes.
        assert_eq!(r.dram_bytes, 3 * 8000 * 4, "phases {:?}", schedule.phases);
    }

    /// Rank partitioning slices tile footprints: per-node DRAM traffic is
    /// `1/nodes` of the single-node run on an explicit backend (all tensors
    /// carry the sliced rank here), and the aggregate matches the
    /// single-node total exactly.
    #[test]
    fn rank_partition_slices_footprints() {
        use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
        use cello_core::score::multinode::Partition;
        use cello_tensor::shape::RankId;
        let dag = chain(3, 1600);
        let accel = CelloConfig::paper();
        let single = {
            let s = build_schedule(&dag, ScheduleOptions::best_intra());
            let mut b = ExplicitBackend::new(4);
            run_schedule(&dag, &s, &accel, &mut b, "1node", "chain")
        };
        let four = {
            let s = build_schedule_with(
                &dag,
                ScheduleOptions::best_intra(),
                &ScheduleConstraints::partitioned(Partition::by_rank(4, RankId::new("m"))),
            );
            let mut b = ExplicitBackend::new(4);
            run_schedule(&dag, &s, &accel, &mut b, "4node", "chain")
        };
        assert_eq!(four.nodes, 4);
        assert_eq!(four.stats.dram_bytes(), single.dram_bytes / 4);
        assert_eq!(four.dram_bytes, single.dram_bytes, "aggregate preserved");
        // Every tensor here carries m, so nothing is broadcast or reduced.
        assert_eq!(four.noc_hop_bytes, 0);
        assert!(four.cycles < single.cycles, "sliced roofline is faster");
    }

    /// Stage partitioning (the naive §V-B strategy) ships every realized
    /// intermediate through the NoC: hop-bytes equal the pipelined tensors'
    /// full footprints, and DRAM traffic stays un-sliced.
    #[test]
    fn stage_partition_ships_realized_edges() {
        use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
        use cello_core::score::multinode::Partition;
        let dag = chain(3, 1600);
        let accel = CelloConfig::paper();
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints::partitioned(Partition::by_stage(4)),
        );
        assert_eq!(s.phases.len(), 1, "whole chain still fuses");
        let mut b = ExplicitBackend::new(4);
        let r = run_schedule(&dag, &s, &accel, &mut b, "naive", "chain");
        // Two realized edges (T0, T1), each 1600 words × 4 B × 1 hop.
        assert_eq!(r.noc_hop_bytes, 2 * 1600 * 4);
        assert_eq!(r.dram_bytes, 2 * 1600 * 4, "In read + T2 write, unsliced");
        assert!(r.noc_energy_pj > 0.0);
    }

    /// A DRAM-bound replicated operand is fetched per node (covered by the
    /// ×nodes aggregation), NOT additionally broadcast — charging both
    /// would double-count the same bytes. Only on-chip (RF/pipeline)
    /// residents ride the broadcast mesh.
    #[test]
    fn dram_bound_replicated_tensors_are_not_broadcast() {
        use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
        use cello_core::score::multinode::Partition;
        use cello_tensor::shape::RankId;
        // One m-dominant op reading a big external declared over (k, n) —
        // replicated under m-slicing, too big for the RF, DRAM-bound under
        // the oracle options.
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 100_000),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let op = dag.add_op(
            "u",
            spec,
            OpKind::TensorMac,
            TensorMeta::dense("T", &["m", "n"], 1_600_000),
        );
        dag.add_external(
            TensorMeta::dense("W", &["k", "n"], 200_000),
            &[(op, &["k", "n"])],
        );
        let accel = CelloConfig::paper();
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::best_intra(),
            &ScheduleConstraints::partitioned(Partition::by_rank(4, RankId::new("m"))),
        );
        let mut b = ExplicitBackend::new(4);
        let r = run_schedule(&dag, &s, &accel, &mut b, "4node", "repl");
        assert_eq!(r.noc_hop_bytes, 0, "no broadcast for DRAM-bound W");
        // Per node: full W read + sliced T write; aggregate ×4.
        assert_eq!(r.dram_bytes, 4 * (200_000 + 1_600_000 / 4) * 4);
    }

    /// A uniform per-phase repartition (every phase = the global split)
    /// replays bit-identically to the plain schedule through the CHORD
    /// backend — the engine-side differential baseline.
    #[test]
    fn uniform_repartition_is_bit_exact() {
        use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
        use cello_core::score::repartition::{PhaseRepartition, PhaseSplit};
        use cello_core::ChordConfig;
        let dag = chain(3, 200_000);
        let accel = CelloConfig::paper();
        let cuts = ScheduleConstraints {
            cut_before: [1, 2].into_iter().collect(),
            ..Default::default()
        };
        let plain = build_schedule_with(&dag, ScheduleOptions::cello(), &cuts);
        let global = PhaseSplit::of_options(&plain.options);
        let uniform_s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints {
                phase_repartition: Some(
                    PhaseRepartition::by_kind(accel.sram_words(), global, global).unwrap(),
                ),
                ..cuts
            },
        );
        let run = |s: &cello_core::score::binding::Schedule| {
            let mut b = crate::backends::ChordBackend::new(ChordConfig {
                capacity_words: crate::evaluate::chord_capacity_words(&accel, s),
                word_bytes: accel.word_bytes,
                policy: cello_core::ChordPolicyKind::PreludeRiff,
                max_entries: accel.riff_entries,
            });
            run_schedule(&dag, s, &accel, &mut b, "c", "chain")
        };
        let (a, b) = (run(&plain), run(&uniform_s));
        assert_eq!(a.dram_bytes, b.dram_bytes);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
    }

    /// Shrinking one phase's CHORD capacity below a live dirty resident
    /// charges the resize eviction as DRAM writeback traffic — repartition
    /// is not free SRAM shuffling.
    #[test]
    fn phase_capacity_shrink_charges_resize_traffic() {
        use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
        use cello_core::score::repartition::{PhaseRepartition, PhaseSplit};
        use cello_core::ChordConfig;
        let dag = chain(3, 200_000);
        let accel = CelloConfig::paper();
        let cuts = ScheduleConstraints {
            cut_before: [1, 2].into_iter().collect(),
            ..Default::default()
        };
        let baseline_s = build_schedule_with(&dag, ScheduleOptions::cello(), &cuts);
        // Phase 1 reserves all but 100_000 words: T0 (200_000 dirty words,
        // resident from phase 0, still consumed in phase 1) loses half its
        // residency at the boundary.
        let rep = PhaseRepartition::by_index(
            accel.sram_words(),
            [(1usize, PhaseSplit::new(accel.sram_words() - 100_000, 0))]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let shrunk_s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints {
                phase_repartition: Some(rep),
                ..cuts
            },
        );
        assert!(shrunk_s.repartition_active());
        let run = |s: &cello_core::score::binding::Schedule| {
            let mut b = crate::backends::ChordBackend::new(ChordConfig {
                capacity_words: crate::evaluate::chord_capacity_words(&accel, s),
                word_bytes: accel.word_bytes,
                policy: cello_core::ChordPolicyKind::PreludeRiff,
                max_entries: accel.riff_entries,
            });
            run_schedule(&dag, s, &accel, &mut b, "c", "chain")
        };
        let (base, shrunk) = (run(&baseline_s), run(&shrunk_s));
        assert!(
            shrunk.stats.writebacks > base.stats.writebacks,
            "resize evictions recorded as writebacks"
        );
        // The evicted dirty tail pays a writeback now and a re-read miss at
        // its phase-1 consume: strictly more DRAM than the uniform split.
        assert!(
            shrunk.dram_bytes > base.dram_bytes,
            "{} !> {}",
            shrunk.dram_bytes,
            base.dram_bytes
        );
    }

    #[test]
    fn report_totals_consistent() {
        let dag = chain(4, 4000);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        assert_eq!(r.macs, dag.nodes().map(|(_, n)| n.macs).sum::<u64>());
        assert!(r.seconds > 0.0);
        assert!(r.gfpmuls_per_sec() > 0.0);
        assert!((r.offchip_energy_pj - r.dram_bytes as f64 * 31.2).abs() < 1e-6);
    }
}

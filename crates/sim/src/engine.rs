//! The phase-walking execution engine.
//!
//! Walks a SCORE [`Schedule`] cluster by cluster and issues operand-granular
//! traffic to a [`MemoryBackend`]:
//!
//! - edges *realized* as pipelining never reach the backend (the pipeline
//!   buffer serves them on-chip);
//! - a tensor read by several ops of the same cluster is fetched **once**
//!   (parallel multicast over the NoC);
//! - every read/write carries the RIFF metadata SCORE derived — uses
//!   remaining after this phase and distance to the next use — which is how
//!   the CHORD backend gets its priorities;
//! - phase time is `max(compute, memory)` cycles: compute = cluster MACs
//!   over the PE array, memory = phase DRAM bytes over the DRAM bandwidth
//!   (§VII-A1's "stalls due to memory bandwidth dominate");
//! - multi-node schedules (§V-B, [`cello_core::Partition`]) are scored
//!   through the same walk: rank partitioning slices every tensor carrying
//!   the partitioned rank to a per-node tile (`words / nodes`), charges
//!   broadcast hops for replicated-tensor reads and reduce hops for
//!   contraction partials, and divides cluster compute across nodes; stage
//!   partitioning keeps full footprints and ships every realized
//!   (pipelined) intermediate through the NoC — the Fig 8 naive strategy.
//!   NoC time serializes with each phase (contention-free model), and DRAM
//!   traffic/energy aggregate across nodes.

use crate::backends::{MemoryBackend, TensorRequest};
use crate::energy::{noc_energy_pj, offchip_energy_pj, onchip_energy_pj};
use crate::report::RunReport;
use cello_core::accel::CelloConfig;
use cello_core::score::binding::{Binding, Schedule};
use cello_core::score::multinode::{NocModel, PartitionAxis};
use cello_graph::dag::{NodeId, TensorDag};
use cello_graph::edge::TensorMeta;
use cello_graph::node::Dominance;
use cello_mem::model::AreaEnergyModel;
use std::collections::{BTreeMap, BTreeSet};

/// Per-tensor consumer sites visible to the backend (realized edges removed),
/// one entry per consuming phase: `(phase index, op position of first use)`.
type ConsumerSites = BTreeMap<String, Vec<(usize, usize)>>;

fn consumer_sites(dag: &TensorDag, schedule: &Schedule) -> ConsumerSites {
    let order = schedule.order();
    let pos: BTreeMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let phase_of = schedule.phase_of();
    let mut sites: ConsumerSites = BTreeMap::new();
    let mut push = |name: &str, consumer: NodeId| {
        let (ph, p) = (phase_of[consumer.0], pos[&consumer]);
        let list = sites.entry(name.to_string()).or_default();
        match list.iter_mut().find(|(lph, _)| *lph == ph) {
            Some((_, first)) => *first = (*first).min(p),
            None => list.push((ph, p)),
        }
    };
    for (eid, edge) in dag.edges() {
        if schedule.realized[eid.0] {
            continue;
        }
        let name = &dag.node(NodeId(edge.src)).output.name;
        push(name, NodeId(edge.dst));
    }
    for ext in dag.externals() {
        for &(consumer, _) in &ext.consumers {
            push(&ext.meta.name, NodeId(consumer));
        }
    }
    for list in sites.values_mut() {
        list.sort();
    }
    sites
}

fn future_use(sites: &ConsumerSites, name: &str, phase: usize, op_pos: usize) -> (u32, u32) {
    let Some(list) = sites.get(name) else {
        return (0, u32::MAX);
    };
    let future: Vec<&(usize, usize)> = list.iter().filter(|(ph, _)| *ph > phase).collect();
    let freq = future.len() as u32;
    let dist = future
        .first()
        .map(|(_, p)| (*p - op_pos.min(*p)) as u32)
        .unwrap_or(u32::MAX);
    (freq, dist)
}

/// Runs `schedule` for `dag` on `backend` under `accel`, returning the
/// traffic/time/energy report.
pub fn run_schedule(
    dag: &TensorDag,
    schedule: &Schedule,
    accel: &CelloConfig,
    backend: &mut dyn MemoryBackend,
    config_label: &str,
    workload: &str,
) -> RunReport {
    let order = schedule.order();
    let pos: BTreeMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let sites = consumer_sites(dag, schedule);
    // Per-node external inputs.
    let mut node_exts: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (xi, ext) in dag.externals().iter().enumerate() {
        for &(consumer, _) in &ext.consumers {
            node_exts.entry(consumer).or_default().push(xi);
        }
    }

    // Multi-node partitioning (§V-B). Under a rank axis every tensor
    // carrying the sliced rank shrinks to its per-node tile and the backend
    // sees one node's traffic (aggregated ×nodes at the end); under the
    // stage axis footprints stay whole and realized edges pay the NoC.
    //
    // Like the paper's own Fig 8 accounting, the rank-axis model idealizes
    // sparse-stencil contractions: an uncontracted-dominant op consuming a
    // sliced operand along its (compressed) contracted rank — CG's SpMM
    // reading `P`, GCN's aggregation reading the previous layer — touches
    // only a neighborhood per row, so its halo exchange is dropped rather
    // than modeled as a full gather. Dense global contractions (the
    // contracted-dominant ops) are the ones charged a mesh reduce.
    let partition = schedule.partition;
    let nodes = partition.nodes.max(1);
    let noc = NocModel::new(nodes);
    let sliced_rank = partition.sliced_rank();
    let stage_split = partition.is_multi() && matches!(partition.axis, PartitionAxis::Stage);
    let is_sliced = |meta: &TensorMeta| sliced_rank.is_some_and(|rank| meta.ranks.contains(&rank));
    let eff_words = |meta: &TensorMeta| {
        if is_sliced(meta) {
            meta.words.div_ceil(nodes)
        } else {
            meta.words
        }
    };
    // A replicated (unsliced) operand is *broadcast* over the mesh only
    // when it lives on-chip (RF/pipeline residents — the paper's Λ/Φ
    // exchanges). DRAM/CHORD-bound replicated operands are instead fetched
    // by every node through its own DRAM channel, which the ×nodes traffic
    // aggregation below already charges — broadcasting those too would
    // double-count the same bytes.
    let broadcast_read = |meta: &TensorMeta, binding: Binding| {
        sliced_rank.is_some()
            && !is_sliced(meta)
            && matches!(binding, Binding::RegisterFile | Binding::Pipeline)
    };
    // Does rank slicing actually divide this op's iteration space? Yes when
    // the op iterates the sliced rank by name, or when it is a dense global
    // contraction over the sliced data (contracted-dominant — CG's Δ/Γ
    // ops, whose huge `k` *is* the sliced dimension under another name).
    // Anything else (e.g. the tiny Λ/Φ inverses) runs replicated on every
    // node and gets no compute credit.
    let op_parallel = |node: &cello_graph::node::OpNode| {
        sliced_rank.is_some_and(|rank| {
            node.spec.extents().iter().any(|e| e.rank == rank)
                || node.dominance == Dominance::Contracted
        })
    };

    let mut phase_cycles: Vec<(u64, u64)> = Vec::with_capacity(schedule.phases.len());
    let mut total_cycles: u64 = 0;
    let mut total_noc_hop_words: u64 = 0;
    let mut prev_stats = backend.stats();

    for (pi, phase) in schedule.phases.iter().enumerate() {
        let mut phase_macs: u64 = 0;
        let mut max_op_macs: u64 = 0;
        let mut phase_noc_words: u64 = 0;
        let mut read_this_phase: BTreeSet<&str> = BTreeSet::new();
        for &op in &phase.ops {
            let node = dag.node(op);
            // Per-node compute share: only ops whose iteration space the
            // slicing divides get credit; replicated ops keep full MACs.
            phase_macs += if op_parallel(node) {
                node.macs.div_ceil(nodes)
            } else {
                node.macs
            };
            max_op_macs = max_op_macs.max(node.macs);
            let op_pos = pos[&op];

            // Producer inputs via unrealized edges.
            for eid in dag.in_edges(op) {
                if schedule.realized[eid.0] {
                    continue;
                }
                let producer = dag.node(NodeId(dag.edge(eid).src));
                let name = producer.output.name.as_str();
                if !read_this_phase.insert(name) {
                    continue; // same-phase multicast: one NoC fetch
                }
                let binding = schedule.binding_of(name);
                if broadcast_read(&producer.output, binding) {
                    phase_noc_words += producer.output.words * noc.hops_broadcast();
                }
                let (freq, dist) = future_use(&sites, name, pi, op_pos);
                backend.read(&TensorRequest {
                    name,
                    words: eff_words(&producer.output),
                    binding,
                    external: false,
                    freq_after: freq,
                    dist_after: dist,
                });
            }
            // External inputs.
            if let Some(exts) = node_exts.get(&op.0) {
                for &xi in exts {
                    let meta = &dag.externals()[xi].meta;
                    let name = meta.name.as_str();
                    if !read_this_phase.insert(name) {
                        continue;
                    }
                    let binding = schedule.binding_of(name);
                    if broadcast_read(meta, binding) {
                        phase_noc_words += meta.words * noc.hops_broadcast();
                    }
                    let (freq, dist) = future_use(&sites, name, pi, op_pos);
                    backend.read(&TensorRequest {
                        name,
                        words: eff_words(meta),
                        binding,
                        external: true,
                        freq_after: freq,
                        dist_after: dist,
                    });
                }
            }
            // Output.
            let out = &node.output;
            if sliced_rank.is_some() && !is_sliced(out) && node.dominance == Dominance::Contracted {
                // A contraction over the sliced rank leaves per-node
                // partials: reduce them across the mesh.
                phase_noc_words += out.words * noc.hops_reduce();
            }
            let (freq, dist) = future_use(&sites, &out.name, pi, op_pos);
            backend.write(&TensorRequest {
                name: &out.name,
                words: eff_words(out),
                binding: schedule.binding_of(&out.name),
                external: false,
                freq_after: freq,
                dist_after: dist,
            });
        }
        if stage_split {
            // Naive strategy: every realized edge streams its whole
            // intermediate between adjacent stage nodes (1 hop).
            for &eid in &phase.realized_edges {
                phase_noc_words += dag.node(NodeId(dag.edge(eid).src)).output.words;
            }
        }

        let now = backend.stats();
        let phase_dram = now.dram_bytes() - prev_stats.dram_bytes();
        prev_stats = now;
        // Rank slicing already folded per-op shares into `phase_macs`.
        // Stage pipelining is bounded below by the heaviest single stage
        // (one op never splits across stage nodes) and by the cluster's
        // total work spread over the nodes actually available.
        let compute_macs = if stage_split {
            max_op_macs.max(phase_macs.div_ceil(nodes))
        } else {
            phase_macs
        };
        let compute = compute_macs.div_ceil(accel.pe_count.max(1));
        let mem = accel.dram.transfer_cycles(phase_dram, accel.freq_hz);
        phase_cycles.push((compute, mem));
        total_noc_hop_words += phase_noc_words;
        total_cycles += compute.max(mem) + noc_cycles(phase_noc_words, accel);
    }

    backend.finish();
    let final_stats = backend.stats();
    let drain = final_stats.dram_bytes() - prev_stats.dram_bytes();
    if drain > 0 {
        let mem = accel.dram.transfer_cycles(drain, accel.freq_hz);
        phase_cycles.push((0, mem));
        total_cycles += mem;
    }

    // Aggregate per-node traffic across the mesh: rank slicing simulated
    // one node's share, stage splitting already saw the whole problem.
    let agg = if sliced_rank.is_some() { nodes } else { 1 };
    let noc_hop_bytes = total_noc_hop_words * accel.word_bytes as u64;
    let macs: u64 = dag.nodes().map(|(_, n)| n.macs).sum();
    let seconds = total_cycles as f64 / accel.freq_hz;
    let model = AreaEnergyModel::default();
    RunReport {
        config: config_label.to_string(),
        workload: workload.to_string(),
        cycles: total_cycles,
        seconds,
        macs,
        dram_bytes: final_stats.dram_bytes() * agg,
        nodes,
        noc_hop_bytes,
        offchip_energy_pj: offchip_energy_pj(&final_stats, accel.dram.energy_pj_per_byte)
            * agg as f64,
        onchip_energy_pj: onchip_energy_pj(
            &final_stats,
            backend.buffer_kind(),
            accel.sram_bytes,
            backend.sram_access_bytes(),
            &model,
        ) * agg as f64,
        noc_energy_pj: noc_energy_pj(noc_hop_bytes),
        stats: final_stats,
        phase_cycles,
    }
}

/// Cycles an inter-node exchange of `hop_words` word-hops costs, serialized
/// against the phase (contention-free link model).
fn noc_cycles(hop_words: u64, accel: &CelloConfig) -> u64 {
    if hop_words == 0 {
        return 0;
    }
    let bytes = (hop_words * accel.word_bytes as u64) as f64;
    (bytes / accel.noc_bandwidth_bytes_per_sec * accel.freq_hz).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::ExplicitBackend;
    use cello_core::score::binding::{build_schedule, ScheduleOptions};
    use cello_graph::edge::TensorMeta;
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn chain(n_ops: usize, words: u64) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", words / 16),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..n_ops {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "k"]);
            } else {
                dag.add_external(
                    TensorMeta::dense("In", &["m", "k"], words),
                    &[(id, &["m", "k"])],
                );
            }
            prev = Some(id);
        }
        dag
    }

    #[test]
    fn best_intra_traffic_is_cold_per_op() {
        let dag = chain(3, 1600);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        // op0: read In (1600w) write T0; op1: read T0 write T1; op2: read T1 write T2.
        // Total = 3 reads + 3 writes of 1600 words × 4 B.
        assert_eq!(r.dram_bytes, 6 * 1600 * 4);
        assert_eq!(r.phase_cycles.len(), 3);
    }

    #[test]
    fn pipelined_chain_saves_intermediates() {
        let dag = chain(3, 1600);
        // CELLO fuses the whole chain: only In is read and T2 written.
        let schedule = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(schedule.phases.len(), 1, "{:?}", schedule.phases);
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "CELLO", "chain");
        assert_eq!(r.dram_bytes, 2 * 1600 * 4);
    }

    #[test]
    fn timing_is_roofline_max() {
        let dag = chain(2, 1 << 20);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        for &(c, m) in &r.phase_cycles {
            assert!(r.cycles >= c.max(m));
        }
        let expected: u64 = r.phase_cycles.iter().map(|&(c, m)| c.max(m)).sum();
        assert_eq!(r.cycles, expected);
    }

    #[test]
    fn multicast_read_deduped_within_phase() {
        // Diamond: p multicasts T0 to a and b; both consume it in one phase.
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 1000),
                RankExtent::dense("k", 8),
                RankExtent::dense("n", 8),
            ],
        );
        let mut dag = TensorDag::new();
        let t = |n: &str| TensorMeta::dense(n, &["m", "n"], 8000);
        let p = dag.add_op("p", spec.clone(), OpKind::TensorMac, t("T0"));
        let a = dag.add_op("a", spec.clone(), OpKind::TensorMac, t("T1"));
        let b = dag.add_op("b", spec.clone(), OpKind::TensorMac, t("T2"));
        dag.add_edge(p, a, &["m", "k"]);
        dag.add_edge(p, b, &["m", "k"]);
        dag.add_external(
            TensorMeta::dense("In", &["m", "k"], 8000),
            &[(p, &["m", "k"])],
        );
        let schedule = build_schedule(&dag, ScheduleOptions::cello());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "CELLO", "diamond");
        // a and b fuse with p (multicast): T0 pipelined once to both.
        // Traffic = In read + T1 + T2 writes.
        assert_eq!(r.dram_bytes, 3 * 8000 * 4, "phases {:?}", schedule.phases);
    }

    /// Rank partitioning slices tile footprints: per-node DRAM traffic is
    /// `1/nodes` of the single-node run on an explicit backend (all tensors
    /// carry the sliced rank here), and the aggregate matches the
    /// single-node total exactly.
    #[test]
    fn rank_partition_slices_footprints() {
        use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
        use cello_core::score::multinode::Partition;
        use cello_tensor::shape::RankId;
        let dag = chain(3, 1600);
        let accel = CelloConfig::paper();
        let single = {
            let s = build_schedule(&dag, ScheduleOptions::best_intra());
            let mut b = ExplicitBackend::new(4);
            run_schedule(&dag, &s, &accel, &mut b, "1node", "chain")
        };
        let four = {
            let s = build_schedule_with(
                &dag,
                ScheduleOptions::best_intra(),
                &ScheduleConstraints::partitioned(Partition::by_rank(4, RankId::new("m"))),
            );
            let mut b = ExplicitBackend::new(4);
            run_schedule(&dag, &s, &accel, &mut b, "4node", "chain")
        };
        assert_eq!(four.nodes, 4);
        assert_eq!(four.stats.dram_bytes(), single.dram_bytes / 4);
        assert_eq!(four.dram_bytes, single.dram_bytes, "aggregate preserved");
        // Every tensor here carries m, so nothing is broadcast or reduced.
        assert_eq!(four.noc_hop_bytes, 0);
        assert!(four.cycles < single.cycles, "sliced roofline is faster");
    }

    /// Stage partitioning (the naive §V-B strategy) ships every realized
    /// intermediate through the NoC: hop-bytes equal the pipelined tensors'
    /// full footprints, and DRAM traffic stays un-sliced.
    #[test]
    fn stage_partition_ships_realized_edges() {
        use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
        use cello_core::score::multinode::Partition;
        let dag = chain(3, 1600);
        let accel = CelloConfig::paper();
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints::partitioned(Partition::by_stage(4)),
        );
        assert_eq!(s.phases.len(), 1, "whole chain still fuses");
        let mut b = ExplicitBackend::new(4);
        let r = run_schedule(&dag, &s, &accel, &mut b, "naive", "chain");
        // Two realized edges (T0, T1), each 1600 words × 4 B × 1 hop.
        assert_eq!(r.noc_hop_bytes, 2 * 1600 * 4);
        assert_eq!(r.dram_bytes, 2 * 1600 * 4, "In read + T2 write, unsliced");
        assert!(r.noc_energy_pj > 0.0);
    }

    /// A DRAM-bound replicated operand is fetched per node (covered by the
    /// ×nodes aggregation), NOT additionally broadcast — charging both
    /// would double-count the same bytes. Only on-chip (RF/pipeline)
    /// residents ride the broadcast mesh.
    #[test]
    fn dram_bound_replicated_tensors_are_not_broadcast() {
        use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
        use cello_core::score::multinode::Partition;
        use cello_tensor::shape::RankId;
        // One m-dominant op reading a big external declared over (k, n) —
        // replicated under m-slicing, too big for the RF, DRAM-bound under
        // the oracle options.
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 100_000),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let op = dag.add_op(
            "u",
            spec,
            OpKind::TensorMac,
            TensorMeta::dense("T", &["m", "n"], 1_600_000),
        );
        dag.add_external(
            TensorMeta::dense("W", &["k", "n"], 200_000),
            &[(op, &["k", "n"])],
        );
        let accel = CelloConfig::paper();
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::best_intra(),
            &ScheduleConstraints::partitioned(Partition::by_rank(4, RankId::new("m"))),
        );
        let mut b = ExplicitBackend::new(4);
        let r = run_schedule(&dag, &s, &accel, &mut b, "4node", "repl");
        assert_eq!(r.noc_hop_bytes, 0, "no broadcast for DRAM-bound W");
        // Per node: full W read + sliced T write; aggregate ×4.
        assert_eq!(r.dram_bytes, 4 * (200_000 + 1_600_000 / 4) * 4);
    }

    #[test]
    fn report_totals_consistent() {
        let dag = chain(4, 4000);
        let schedule = build_schedule(&dag, ScheduleOptions::best_intra());
        let mut backend = ExplicitBackend::new(4);
        let accel = CelloConfig::paper();
        let r = run_schedule(&dag, &schedule, &accel, &mut backend, "Flexagon", "chain");
        assert_eq!(r.macs, dag.nodes().map(|(_, n)| n.macs).sum::<u64>());
        assert!(r.seconds > 0.0);
        assert!(r.gfpmuls_per_sec() > 0.0);
        assert!((r.offchip_energy_pj - r.dram_bytes as f64 * 31.2).abs() < 1e-6);
    }
}

//! Multi-node weak/strong scaling of the CELLO dataflow (§V-B "Scalable
//! Dataflow", Fig 8 bottom).
//!
//! SCORE's multi-node rule: *parallelize the dominant rank across nodes and
//! keep pipelining within a node*. Each node then owns an `M/nodes` slice of
//! every skewed tensor and a private CHORD; per CG iteration, only the small
//! tensors cross the NoC (broadcast `Λ`, reduce `Γ` partials). The naive
//! alternative splits pipeline *stages* across nodes and ships the full
//! `M × N` intermediate.
//!
//! Both placements are now first-class **schedule decisions**: this module
//! builds a [`Partition`]-constrained schedule and scores it through the
//! ordinary engine (`run_schedule`), which slices per-node tile footprints,
//! charges NoC word-hops against [`cello_core::NocModel`]'s mesh, and
//! serializes the exchanges with each phase. The hand-rolled NoC arithmetic
//! this module used to carry is gone — naive-vs-scalable is just two
//! schedules compared on the same cost model.

use crate::baselines::{backend_for, ConfigKind};
use crate::engine::run_schedule;
use crate::report::RunReport;
use cello_core::accel::CelloConfig;
use cello_core::score::binding::{build_schedule_with, ScheduleConstraints};
use cello_core::score::multinode::{dominant_partition_rank, Partition};
use cello_workloads::cg::{build_cg_dag, CgParams};
use serde::{Deserialize, Serialize};

/// Which inter-node placement the run models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingStrategy {
    /// SCORE's placement: dominant rank sliced, small tensors on the NoC.
    Scalable,
    /// Pipeline stages split across nodes: the big intermediate on the NoC.
    Naive,
}

impl ScalingStrategy {
    /// The [`Partition`] this strategy lowers to for `dag`-shaped work.
    pub fn partition(&self, dag: &cello_graph::dag::TensorDag, nodes: u64) -> Partition {
        match self {
            ScalingStrategy::Scalable => dominant_partition_rank(dag)
                .map(|rank| Partition::by_rank(nodes, rank))
                .unwrap_or_else(|| Partition::by_stage(nodes)),
            ScalingStrategy::Naive => Partition::by_stage(nodes),
        }
    }
}

/// Result of one multi-node run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Node count.
    pub nodes: u64,
    /// Strategy used.
    pub strategy: ScalingStrategy,
    /// End-to-end seconds (per-node compute/memory + NoC serialization).
    pub seconds: f64,
    /// NoC traffic in byte-hops (sum over all exchanges).
    pub noc_bytes: u64,
    /// Aggregate DRAM traffic across nodes.
    pub dram_bytes: u64,
    /// The underlying engine report of the partitioned schedule.
    pub per_node: RunReport,
}

impl ScalingReport {
    /// Strong-scaling speedup relative to a 1-node run.
    pub fn speedup_over(&self, single: &ScalingReport) -> f64 {
        single.seconds / self.seconds
    }
}

/// Runs CG strong scaling: the *same* problem (`prm`) split over `nodes`,
/// expressed as a partitioned schedule and scored by the simulator.
pub fn run_cg_multinode(
    prm: &CgParams,
    accel: &CelloConfig,
    kind: ConfigKind,
    nodes: u64,
    strategy: ScalingStrategy,
) -> ScalingReport {
    assert!(nodes >= 1);
    let dag = build_cg_dag(prm);
    let partition = strategy.partition(&dag, nodes);
    let schedule = build_schedule_with(
        &dag,
        kind.schedule_options(),
        &ScheduleConstraints::partitioned(partition),
    );
    debug_assert!(schedule.validate(&dag).is_ok());
    let mut backend = backend_for(&dag, kind, accel);
    let report = run_schedule(
        &dag,
        &schedule,
        accel,
        backend.as_mut(),
        kind.label(),
        "multinode",
    );
    ScalingReport {
        nodes,
        strategy,
        seconds: report.seconds,
        noc_bytes: report.noc_hop_bytes,
        dram_bytes: report.dram_bytes,
        per_node: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_workloads::datasets::SHALLOW_WATER1;

    fn prm() -> CgParams {
        CgParams::from_dataset(&SHALLOW_WATER1, 16, 4)
    }

    #[test]
    fn single_node_has_no_noc_traffic() {
        let r = run_cg_multinode(
            &prm(),
            &CelloConfig::paper(),
            ConfigKind::Cello,
            1,
            ScalingStrategy::Scalable,
        );
        assert_eq!(r.noc_bytes, 0);
        assert_eq!(r.per_node.nodes, 1);
    }

    #[test]
    fn scalable_strategy_scales() {
        let accel = CelloConfig::paper();
        let single = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            1,
            ScalingStrategy::Scalable,
        );
        let mut prev_seconds = single.seconds;
        for nodes in [4u64, 16] {
            let r = run_cg_multinode(
                &prm(),
                &accel,
                ConfigKind::Cello,
                nodes,
                ScalingStrategy::Scalable,
            );
            assert!(
                r.seconds < prev_seconds,
                "{nodes} nodes: {} !< {prev_seconds}",
                r.seconds
            );
            prev_seconds = r.seconds;
        }
        let sixteen = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            16,
            ScalingStrategy::Scalable,
        );
        assert!(
            sixteen.speedup_over(&single) > 4.0,
            "{}",
            sixteen.speedup_over(&single)
        );
    }

    /// The Fig 8 ablation through the scheduled path: the naive (stage-split)
    /// schedule ships the big intermediates, the scalable (rank-sliced) one
    /// only the Greek tensors — orders of magnitude apart on the same DAG,
    /// same engine, same cost model.
    #[test]
    fn naive_strategy_pays_noc() {
        let accel = CelloConfig::paper();
        let nodes = 16;
        let scalable = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            nodes,
            ScalingStrategy::Scalable,
        );
        let naive = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            nodes,
            ScalingStrategy::Naive,
        );
        assert!(
            naive.noc_bytes > 100 * scalable.noc_bytes.max(1),
            "naive {} vs scalable {}",
            naive.noc_bytes,
            scalable.noc_bytes
        );
        assert!(naive.seconds > scalable.seconds);
    }

    #[test]
    fn slicing_helps_capacity_bound_workloads() {
        // At N=16 shallow_water1 exceeds a 4 MB CHORD on one node; slicing M
        // across nodes shrinks per-node working sets, so aggregate DRAM
        // traffic *drops* superlinearly until everything fits.
        let accel = CelloConfig::paper();
        let single = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            1,
            ScalingStrategy::Scalable,
        );
        let four = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            4,
            ScalingStrategy::Scalable,
        );
        assert!(four.dram_bytes < single.dram_bytes);
    }
}

//! Multi-node weak/strong scaling of the CELLO dataflow (§V-B "Scalable
//! Dataflow", Fig 8 bottom).
//!
//! SCORE's multi-node rule: *parallelize the dominant rank across nodes and
//! keep pipelining within a node*. Each node then owns an `M/nodes` slice of
//! every skewed tensor and a private CHORD; per CG iteration, only the small
//! tensors cross the NoC (broadcast `Λ`, reduce `Γ` partials). The naive
//! alternative splits pipeline *stages* across nodes and ships the full
//! `M × N` intermediate.
//!
//! The model: per-node time comes from simulating the sliced problem on a
//! single node (each node has its own DRAM channel, so per-node bandwidth is
//! unchanged); NoC time is `words × word_bytes / noc_bandwidth` per exchange,
//! serialized with the compute phases (a conservative, contention-free
//! model).

use crate::baselines::{run_config, ConfigKind};
use crate::report::RunReport;
use cello_core::accel::CelloConfig;
use cello_core::score::multinode::NocModel;
use cello_workloads::cg::{build_cg_dag, CgParams};
use serde::{Deserialize, Serialize};

/// Which inter-node placement the run models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingStrategy {
    /// SCORE's placement: dominant rank sliced, small tensors on the NoC.
    Scalable,
    /// Pipeline stages split across nodes: the big intermediate on the NoC.
    Naive,
}

/// Result of one multi-node run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Node count.
    pub nodes: u64,
    /// Strategy used.
    pub strategy: ScalingStrategy,
    /// End-to-end seconds (per-node compute/memory + NoC serialization).
    pub seconds: f64,
    /// NoC traffic in bytes (sum over all exchanges).
    pub noc_bytes: u64,
    /// Aggregate DRAM traffic across nodes.
    pub dram_bytes: u64,
    /// The per-node single-node report the time is derived from.
    pub per_node: RunReport,
}

impl ScalingReport {
    /// Strong-scaling speedup relative to a 1-node run.
    pub fn speedup_over(&self, single: &ScalingReport) -> f64 {
        single.seconds / self.seconds
    }
}

/// NoC link bandwidth (bytes/s) used to serialize inter-node exchanges.
pub const NOC_BANDWIDTH: f64 = 256.0e9;

/// Runs CG strong scaling: the *same* problem (`prm`) split over `nodes`.
pub fn run_cg_multinode(
    prm: &CgParams,
    accel: &CelloConfig,
    kind: ConfigKind,
    nodes: u64,
    strategy: ScalingStrategy,
) -> ScalingReport {
    assert!(nodes >= 1);
    // Slice the dominant rank; A's rows (and payload) slice along with it.
    let sliced = CgParams {
        m: (prm.m / nodes).max(1),
        a_payload_words: (prm.a_payload_words / nodes).max(1),
        ..*prm
    };
    let dag = build_cg_dag(&sliced);
    let per_node = run_config(&dag, kind, accel, "multinode-slice");

    let noc = NocModel::new(nodes);
    let word_bytes = accel.word_bytes as u64;
    // Exchanges per iteration: the two contraction reductions (Δ, Γ) and the
    // two small-tensor broadcasts (Λ, Φ) under the scalable strategy; the
    // naive strategy ships the R intermediate between pipeline stages.
    let per_iter_words = if nodes == 1 {
        0 // single node: everything stays on-chip, no NoC at all
    } else {
        match strategy {
            ScalingStrategy::Scalable => 4 * noc.scalable_words(prm.n, prm.nprime),
            ScalingStrategy::Naive => noc.naive_words(prm.m, prm.n),
        }
    };
    let noc_words = per_iter_words * prm.iterations as u64;
    let noc_bytes = noc_words * word_bytes;
    let noc_seconds = noc_bytes as f64 / NOC_BANDWIDTH;

    ScalingReport {
        nodes,
        strategy,
        seconds: per_node.seconds + noc_seconds,
        noc_bytes,
        dram_bytes: per_node.dram_bytes * nodes,
        per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_workloads::datasets::SHALLOW_WATER1;

    fn prm() -> CgParams {
        CgParams::from_dataset(&SHALLOW_WATER1, 16, 4)
    }

    #[test]
    fn single_node_has_no_noc_traffic() {
        let r = run_cg_multinode(
            &prm(),
            &CelloConfig::paper(),
            ConfigKind::Cello,
            1,
            ScalingStrategy::Scalable,
        );
        assert_eq!(r.noc_bytes, 0);
    }

    #[test]
    fn scalable_strategy_scales() {
        let accel = CelloConfig::paper();
        let single = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            1,
            ScalingStrategy::Scalable,
        );
        let mut prev_seconds = single.seconds;
        for nodes in [4u64, 16] {
            let r = run_cg_multinode(
                &prm(),
                &accel,
                ConfigKind::Cello,
                nodes,
                ScalingStrategy::Scalable,
            );
            assert!(
                r.seconds < prev_seconds,
                "{nodes} nodes: {} !< {prev_seconds}",
                r.seconds
            );
            prev_seconds = r.seconds;
        }
        let sixteen = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            16,
            ScalingStrategy::Scalable,
        );
        assert!(
            sixteen.speedup_over(&single) > 4.0,
            "{}",
            sixteen.speedup_over(&single)
        );
    }

    #[test]
    fn naive_strategy_pays_noc() {
        let accel = CelloConfig::paper();
        let nodes = 16;
        let scalable = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            nodes,
            ScalingStrategy::Scalable,
        );
        let naive = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            nodes,
            ScalingStrategy::Naive,
        );
        assert!(naive.noc_bytes > 100 * scalable.noc_bytes);
        assert!(naive.seconds > scalable.seconds);
    }

    #[test]
    fn slicing_helps_capacity_bound_workloads() {
        // At N=16 shallow_water1 exceeds a 4 MB CHORD on one node; slicing M
        // across nodes shrinks per-node working sets, so aggregate DRAM
        // traffic *drops* superlinearly until everything fits.
        let accel = CelloConfig::paper();
        let single = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            1,
            ScalingStrategy::Scalable,
        );
        let four = run_cg_multinode(
            &prm(),
            &accel,
            ConfigKind::Cello,
            4,
            ScalingStrategy::Scalable,
        );
        assert!(four.dram_bytes < single.dram_bytes);
    }
}

//! Address map for trace-driven cache simulation.
//!
//! The `Flex+LRU` / `Flex+BRRIP` baselines route every access through a
//! line-granular cache, so tensors need byte addresses. Real solvers update
//! `X`, `R`, `P` **in place** — iteration `i`'s `R@i` occupies the same
//! buffer as `R@(i−1)` — so the address map aliases versioned names
//! (`R@3` → base tensor `R`) onto one region. This is what gives the cache a
//! fair shot at cross-iteration reuse (and what lets large working sets
//! thrash it, reproducing Fig 12's cache results).

use cello_graph::dag::TensorDag;
use std::collections::BTreeMap;

/// Strips the `@version` suffix: `R@3` → `R`.
pub fn base_name(tensor: &str) -> &str {
    tensor.split('@').next().unwrap_or(tensor)
}

/// Assigns each *base* tensor a contiguous, line-aligned byte range.
#[derive(Clone, Debug, Default)]
pub struct AddressMap {
    ranges: BTreeMap<String, (u64, u64)>, // base name -> (start, bytes)
    next: u64,
}

impl AddressMap {
    /// Builds the map over every tensor (op outputs + externals) of a DAG.
    pub fn build(dag: &TensorDag, word_bytes: u32) -> Self {
        let mut map = Self::default();
        for ext in dag.externals() {
            map.insert(&ext.meta.name, ext.meta.words * word_bytes as u64);
        }
        for (_, node) in dag.nodes() {
            map.insert(&node.output.name, node.output.words * word_bytes as u64);
        }
        map
    }

    /// Registers `tensor` (aliased by base name) with `bytes` footprint.
    pub fn insert(&mut self, tensor: &str, bytes: u64) {
        let base = base_name(tensor).to_string();
        let entry = self.ranges.entry(base).or_insert_with(|| {
            let start = self.next;
            self.next += bytes.max(1);
            // Line-align region starts so tensors never share a cache line.
            self.next = self.next.div_ceil(64) * 64;
            (start, bytes)
        });
        // Versions of the same buffer must agree on footprint; grow if needed.
        if bytes > entry.1 {
            entry.1 = bytes;
        }
    }

    /// Byte range of a tensor (panics on unknown tensors — the engine always
    /// builds the map from the same DAG it walks).
    pub fn range(&self, tensor: &str) -> (u64, u64) {
        self.ranges[base_name(tensor)]
    }

    /// Total mapped bytes (the working-set footprint).
    pub fn footprint_bytes(&self) -> u64 {
        self.ranges.values().map(|&(_, b)| b).sum()
    }

    /// Number of distinct physical buffers.
    pub fn buffers(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_name_strips_version() {
        assert_eq!(base_name("R@3"), "R");
        assert_eq!(base_name("A"), "A");
        assert_eq!(base_name("rho@10"), "rho");
    }

    #[test]
    fn versions_alias_one_region() {
        let mut m = AddressMap::default();
        m.insert("R@1", 1000);
        m.insert("R@2", 1000);
        m.insert("X@1", 500);
        assert_eq!(m.buffers(), 2);
        assert_eq!(m.range("R@1"), m.range("R@2"));
        assert_ne!(m.range("R@1").0, m.range("X@1").0);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut m = AddressMap::default();
        m.insert("A", 100);
        m.insert("B", 200);
        m.insert("C", 300);
        let (a0, ab) = m.range("A");
        let (b0, bb) = m.range("B");
        let (c0, _) = m.range("C");
        assert!(a0 + ab <= b0);
        assert!(b0 + bb <= c0);
    }

    #[test]
    fn footprint_counts_distinct_buffers_once() {
        let mut m = AddressMap::default();
        m.insert("R@1", 1000);
        m.insert("R@2", 1000);
        assert_eq!(m.footprint_bytes(), 1000);
    }

    #[test]
    fn build_from_cg_dag_aliases_iterations() {
        use cello_workloads::cg::{build_cg_dag, CgParams};
        let dag = build_cg_dag(&CgParams {
            m: 1000,
            occupancy: 4.0,
            a_payload_words: 9001,
            n: 4,
            nprime: 4,
            iterations: 3,
            a_occupancy: None,
        });
        let m = AddressMap::build(&dag, 4);
        // Physical buffers: A, P, X, R, G, S, D, L, F = 9.
        assert_eq!(m.buffers(), 9);
        assert_eq!(m.range("S@1"), m.range("S@3"));
    }
}

//! Per-phase footprint/traffic planning — the shared primitive under both
//! evaluation tiers.
//!
//! [`plan_phases`] walks a SCORE [`Schedule`] once and materializes, per
//! pipeline cluster, exactly what the execution engine would do: the ordered
//! operand-granular accesses (multicast-deduped, realized edges skipped,
//! RIFF `(freq, dist)` metadata attached with any `PriorityBias` already
//! applied), the per-node compute share, and the NoC hop-words the §V-B
//! partition charges. The [`crate::engine`] *replays* the plan against a
//! stateful [`crate::backends::MemoryBackend`]; the `cello-search`
//! surrogate scores the same plan with closed-form CHORD estimates. Because
//! both tiers consume one plan, their footprint, slicing, multicast, and
//! NoC accounting cannot drift apart — the only thing the surrogate
//! approximates is the buffer's replacement behavior.

use cello_core::score::binding::{Binding, Schedule};
use cello_core::score::multinode::{NocModel, PartitionAxis};
use cello_core::score::repartition::PhaseSplit;
use cello_graph::dag::{NodeId, TensorDag};
use cello_graph::edge::TensorMeta;
use cello_graph::node::Dominance;
use std::collections::BTreeMap;

/// One operand-granular access the engine will issue.
#[derive(Clone, Debug)]
pub struct PlannedAccess {
    /// Versioned tensor name.
    pub name: String,
    /// Effective footprint in words (sliced `1/nodes` under rank
    /// partitioning when the tensor carries the sliced rank; shrunk to the
    /// overbooked grant for occupancy-carrying CHORD operands).
    pub words: u64,
    /// Words expected to overflow an overbooked CHORD grant and round-trip
    /// to DRAM — the Tailors-style spill penalty. Zero unless the schedule
    /// overbooks, the tensor is CHORD-bound, and it carries measured
    /// occupancy. Both tiers charge these as un-hideable outbound traffic.
    pub spill_words: u64,
    /// SCORE's binding for this tensor.
    pub binding: Binding,
    /// True for DAG externals (DRAM-resident inputs).
    pub external: bool,
    /// True for the producing write, false for a consuming read.
    pub write: bool,
    /// Backend-visible uses remaining after this access (RIFF freq, biased).
    pub freq_after: u32,
    /// Ops until the next backend-visible use (RIFF dist, biased;
    /// `u32::MAX` = none).
    pub dist_after: u32,
}

/// One pipeline cluster's planned work.
#[derive(Clone, Debug, Default)]
pub struct PlannedPhase {
    /// Backend accesses in engine issue order.
    pub accesses: Vec<PlannedAccess>,
    /// Per-node compute share in MACs (rank-parallel credit folded in;
    /// stage splits bounded below by the heaviest single stage).
    pub compute_macs: u64,
    /// NoC word-hops this phase (broadcast/reduce smalls under rank
    /// slicing, full realized intermediates under stage splits).
    pub noc_hop_words: u64,
    /// The SRAM split in force during this phase (the schedule's resolved
    /// per-phase repartition; equals the global split without one). Both
    /// tiers derive the phase's CHORD capacity from this one value, so they
    /// cannot disagree about it.
    pub split: PhaseSplit,
}

impl PlannedPhase {
    /// Total overbook spill this phase, in words — charged by both tiers as
    /// outbound DRAM traffic that no prefetch can hide.
    pub fn spill_words(&self) -> u64 {
        self.accesses.iter().map(|a| a.spill_words).sum()
    }
}

/// The full plan for one schedule.
#[derive(Clone, Debug)]
pub struct PhasePlan {
    /// Planned phases in execution order.
    pub phases: Vec<PlannedPhase>,
    /// Accelerator nodes the schedule runs on.
    pub nodes: u64,
    /// Multiplier aggregating per-node DRAM traffic/energy across the mesh:
    /// `nodes` under rank slicing (the plan describes one node's share),
    /// 1 otherwise (stage splits see the whole problem).
    pub dram_agg: u64,
}

impl PhasePlan {
    /// Total NoC word-hops across all phases.
    pub fn noc_hop_words(&self) -> u64 {
        self.phases.iter().map(|p| p.noc_hop_words).sum()
    }
}

/// Tensors are numbered `0..node_count` (op outputs, by node index) then
/// `node_count..node_count + externals` (externals, by external index) —
/// the hot loops below run on these indices instead of string keys.
type TensorId = usize;

/// Per-tensor consumer sites visible to the backend (realized edges
/// removed), one entry per consuming phase, sorted:
/// `(phase index, op position of first use)`.
type ConsumerSites = Vec<Vec<(usize, usize)>>;

fn consumer_sites(
    dag: &TensorDag,
    schedule: &Schedule,
    pos: &[usize],
    phase_of: &[usize],
) -> ConsumerSites {
    let ext_base = dag.node_count();
    let mut sites: ConsumerSites = vec![Vec::new(); ext_base + dag.externals().len()];
    let mut push = |tensor: TensorId, consumer: usize| {
        let (ph, p) = (phase_of[consumer], pos[consumer]);
        let list = &mut sites[tensor];
        match list.iter_mut().find(|(lph, _)| *lph == ph) {
            Some((_, first)) => *first = (*first).min(p),
            None => list.push((ph, p)),
        }
    };
    for (eid, edge) in dag.edges() {
        if schedule.realized[eid.0] {
            continue;
        }
        push(edge.src, edge.dst);
    }
    for (xi, ext) in dag.externals().iter().enumerate() {
        for &(consumer, _) in &ext.consumers {
            push(ext_base + xi, consumer);
        }
    }
    for list in sites.iter_mut() {
        list.sort_unstable();
    }
    sites
}

fn future_use(sites: &ConsumerSites, tensor: TensorId, phase: usize, op_pos: usize) -> (u32, u32) {
    let list = &sites[tensor];
    // `list` is sorted by (phase, op position): the first site past `phase`
    // starts the future suffix (allocation-free — this runs per access).
    let start = list.partition_point(|&(ph, _)| ph <= phase);
    let freq = (list.len() - start) as u32;
    let dist = list
        .get(start)
        .map(|&(_, p)| (p - op_pos.min(p)) as u32)
        .unwrap_or(u32::MAX);
    (freq, dist)
}

/// Plans the engine's full phase walk for `schedule` on `dag` (see module
/// docs). Deterministic and backend-free: the same plan replays against any
/// [`crate::backends::MemoryBackend`] or scores analytically.
pub fn plan_phases(dag: &TensorDag, schedule: &Schedule) -> PhasePlan {
    let ext_base = dag.node_count();
    let mut pos = vec![0usize; ext_base];
    for (i, n) in schedule.order().into_iter().enumerate() {
        pos[n.0] = i;
    }
    let phase_of = schedule.phase_of();
    let sites = consumer_sites(dag, schedule, &pos, &phase_of);
    // Per-node external inputs.
    let mut node_exts: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (xi, ext) in dag.externals().iter().enumerate() {
        for &(consumer, _) in &ext.consumers {
            node_exts.entry(consumer).or_default().push(xi);
        }
    }
    // Hoist the per-tensor lookups (meta, binding, bias) out of the access
    // loops: the hot path then runs on integer tensor ids only.
    let metas: Vec<&TensorMeta> = (0..ext_base)
        .map(|i| &dag.node(NodeId(i)).output)
        .chain(dag.externals().iter().map(|x| &x.meta))
        .collect();
    let bindings: Vec<Binding> = metas.iter().map(|m| schedule.binding_of(&m.name)).collect();
    let biases: Vec<Option<cello_core::chord::PriorityBias>> = metas
        .iter()
        .map(|m| schedule.chord_bias.get(&m.name).copied())
        .collect();

    // Multi-node partitioning (§V-B). Under a rank axis every tensor
    // carrying the sliced rank shrinks to its per-node tile and the plan
    // describes one node's traffic (aggregated ×nodes by `dram_agg`); under
    // the stage axis footprints stay whole and realized edges pay the NoC.
    //
    // Like the paper's own Fig 8 accounting, the rank-axis model idealizes
    // sparse-stencil contractions: an uncontracted-dominant op consuming a
    // sliced operand along its (compressed) contracted rank — CG's SpMM
    // reading `P`, GCN's aggregation reading the previous layer — touches
    // only a neighborhood per row, so its halo exchange is dropped rather
    // than modeled as a full gather. Dense global contractions (the
    // contracted-dominant ops) are the ones charged a mesh reduce.
    let partition = schedule.partition;
    let nodes = partition.nodes.max(1);
    let noc = NocModel::new(nodes);
    let sliced_rank = partition.sliced_rank();
    let stage_split = partition.is_multi() && matches!(partition.axis, PartitionAxis::Stage);
    let is_sliced = |meta: &TensorMeta| sliced_rank.is_some_and(|rank| meta.ranks.contains(&rank));
    let eff_words = |meta: &TensorMeta| {
        if is_sliced(meta) {
            meta.words.div_ceil(nodes)
        } else {
            meta.words
        }
    };
    // Tailors-style overbooking: an occupancy-carrying CHORD operand is
    // granted capacity at its expected occupancy (`words` shrinks to the
    // grant) and charged the modeled overflow as `spill_words`. Computed
    // here — inside the one plan both tiers consume — so the engine and the
    // surrogate cannot disagree about grants or spills. Off, non-CHORD, or
    // occupancy-free tensors keep the worst-case dense model bit for bit.
    let overbook = schedule.chord_overbook;
    let occ_words = |meta: &TensorMeta, binding: Binding, words: u64| -> (u64, u64) {
        match (meta.occupancy, binding) {
            (Some(occ), Binding::Chord) if !overbook.is_off() => (
                overbook.granted_words(words, &occ),
                overbook.spill_words(words, &occ),
            ),
            _ => (words, 0),
        }
    };
    // A replicated (unsliced) operand is *broadcast* over the mesh only
    // when it lives on-chip (RF/pipeline residents — the paper's Λ/Φ
    // exchanges). DRAM/CHORD-bound replicated operands are instead fetched
    // by every node through its own DRAM channel, which the ×nodes traffic
    // aggregation already charges — broadcasting those too would
    // double-count the same bytes.
    let broadcast_read = |meta: &TensorMeta, binding: Binding| {
        sliced_rank.is_some()
            && !is_sliced(meta)
            && matches!(binding, Binding::RegisterFile | Binding::Pipeline)
    };
    // Does rank slicing actually divide this op's iteration space? Yes when
    // the op iterates the sliced rank by name, or when it is a dense global
    // contraction over the sliced data (contracted-dominant — CG's Δ/Γ
    // ops, whose huge `k` *is* the sliced dimension under another name).
    // Anything else (e.g. the tiny Λ/Φ inverses) runs replicated on every
    // node and gets no compute credit.
    let op_parallel = |node: &cello_graph::node::OpNode| {
        sliced_rank.is_some_and(|rank| {
            node.spec.extents().iter().any(|e| e.rank == rank)
                || node.dominance == Dominance::Contracted
        })
    };
    // The DSE-searched half of the SCORE-CHORD interface: bias the derived
    // RIFF metadata before the backend (or the surrogate) sees it.
    let biased = |tensor: TensorId, freq: u32, dist: u32| -> (u32, u32) {
        match biases[tensor] {
            Some(bias) => {
                let p = bias.apply(cello_core::chord::RiffPriority::new(freq, dist));
                (p.freq, p.dist)
            }
            None => (freq, dist),
        }
    };

    let mut phases: Vec<PlannedPhase> = Vec::with_capacity(schedule.phases.len());
    // Phase stamp (pi + 1) per tensor: same-phase multicast dedup without a
    // per-phase set allocation.
    let mut read_stamp = vec![0usize; metas.len()];
    for (pi, phase) in schedule.phases.iter().enumerate() {
        let mut planned = PlannedPhase {
            split: schedule.phase_split(pi),
            ..PlannedPhase::default()
        };
        let mut phase_macs: u64 = 0;
        let mut max_op_macs: u64 = 0;
        for &op in &phase.ops {
            let node = dag.node(op);
            // Per-node compute share: only ops whose iteration space the
            // slicing divides get credit; replicated ops keep full MACs.
            phase_macs += if op_parallel(node) {
                node.macs.div_ceil(nodes)
            } else {
                node.macs
            };
            max_op_macs = max_op_macs.max(node.macs);
            let op_pos = pos[op.0];

            // Producer inputs via unrealized edges.
            for eid in dag.in_edges(op) {
                if schedule.realized[eid.0] {
                    continue;
                }
                let tensor: TensorId = dag.edge(eid).src;
                if read_stamp[tensor] == pi + 1 {
                    continue; // same-phase multicast: one NoC fetch
                }
                read_stamp[tensor] = pi + 1;
                let meta = metas[tensor];
                let binding = bindings[tensor];
                if broadcast_read(meta, binding) {
                    planned.noc_hop_words += meta.words * noc.hops_broadcast();
                }
                let (freq, dist) = future_use(&sites, tensor, pi, op_pos);
                let (freq, dist) = biased(tensor, freq, dist);
                let (words, spill_words) = occ_words(meta, binding, eff_words(meta));
                planned.accesses.push(PlannedAccess {
                    name: meta.name.clone(),
                    words,
                    spill_words,
                    binding,
                    external: false,
                    write: false,
                    freq_after: freq,
                    dist_after: dist,
                });
            }
            // External inputs.
            if let Some(exts) = node_exts.get(&op.0) {
                for &xi in exts {
                    let tensor: TensorId = ext_base + xi;
                    if read_stamp[tensor] == pi + 1 {
                        continue;
                    }
                    read_stamp[tensor] = pi + 1;
                    let meta = metas[tensor];
                    let binding = bindings[tensor];
                    if broadcast_read(meta, binding) {
                        planned.noc_hop_words += meta.words * noc.hops_broadcast();
                    }
                    let (freq, dist) = future_use(&sites, tensor, pi, op_pos);
                    let (freq, dist) = biased(tensor, freq, dist);
                    let (words, spill_words) = occ_words(meta, binding, eff_words(meta));
                    planned.accesses.push(PlannedAccess {
                        name: meta.name.clone(),
                        words,
                        spill_words,
                        binding,
                        external: true,
                        write: false,
                        freq_after: freq,
                        dist_after: dist,
                    });
                }
            }
            // Output.
            let out = &node.output;
            if sliced_rank.is_some() && !is_sliced(out) && node.dominance == Dominance::Contracted {
                // A contraction over the sliced rank leaves per-node
                // partials: reduce them across the mesh.
                planned.noc_hop_words += out.words * noc.hops_reduce();
            }
            let (freq, dist) = future_use(&sites, op.0, pi, op_pos);
            let (freq, dist) = biased(op.0, freq, dist);
            let (words, spill_words) = occ_words(out, bindings[op.0], eff_words(out));
            planned.accesses.push(PlannedAccess {
                name: out.name.clone(),
                words,
                spill_words,
                binding: bindings[op.0],
                external: false,
                write: true,
                freq_after: freq,
                dist_after: dist,
            });
        }
        if stage_split {
            // Naive strategy: every realized edge streams its whole
            // intermediate between adjacent stage nodes (1 hop).
            for &eid in &phase.realized_edges {
                planned.noc_hop_words += dag.node(NodeId(dag.edge(eid).src)).output.words;
            }
        }
        // Rank slicing already folded per-op shares into `phase_macs`.
        // Stage pipelining is bounded below by the heaviest single stage
        // (one op never splits across stage nodes) and by the cluster's
        // total work spread over the nodes actually available.
        planned.compute_macs = if stage_split {
            max_op_macs.max(phase_macs.div_ceil(nodes))
        } else {
            phase_macs
        };
        phases.push(planned);
    }

    PhasePlan {
        phases,
        nodes,
        dram_agg: if sliced_rank.is_some() { nodes } else { 1 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_core::chord::PriorityBias;
    use cello_core::score::binding::{
        build_schedule, build_schedule_with, ScheduleConstraints, ScheduleOptions,
    };
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn chain(n_ops: usize, words: u64) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", words / 16),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..n_ops {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                cello_graph::edge::TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "k"]);
            } else {
                dag.add_external(
                    cello_graph::edge::TensorMeta::dense("In", &["m", "k"], words),
                    &[(id, &["m", "k"])],
                );
            }
            prev = Some(id);
        }
        dag
    }

    /// The fused chain plans one phase: one external read, one terminal
    /// write, no NoC, and compute equal to the cluster MACs.
    #[test]
    fn fused_chain_plan_shape() {
        let dag = chain(3, 1600);
        let s = build_schedule(&dag, ScheduleOptions::cello());
        let plan = plan_phases(&dag, &s);
        assert_eq!(plan.phases.len(), 1);
        assert_eq!(plan.nodes, 1);
        assert_eq!(plan.dram_agg, 1);
        assert_eq!(plan.noc_hop_words(), 0);
        let p = &plan.phases[0];
        let reads: Vec<&PlannedAccess> = p.accesses.iter().filter(|a| !a.write).collect();
        let writes: Vec<&PlannedAccess> = p.accesses.iter().filter(|a| a.write).collect();
        assert_eq!(reads.len(), 1, "only the external In is read");
        assert!(reads[0].external && reads[0].name == "In");
        assert_eq!(writes.len(), 3, "every op writes its output once");
        let macs: u64 = dag.nodes().map(|(_, n)| n.macs).sum();
        assert_eq!(p.compute_macs, macs);
    }

    /// Rank partitioning slices planned footprints and sets the aggregate
    /// multiplier; stage splits keep footprints whole but ship realized
    /// intermediates.
    #[test]
    fn plan_reflects_partition_axes() {
        use cello_core::score::multinode::Partition;
        use cello_tensor::shape::RankId;
        let dag = chain(3, 1600);
        let sliced = build_schedule_with(
            &dag,
            ScheduleOptions::best_intra(),
            &ScheduleConstraints::partitioned(Partition::by_rank(4, RankId::new("m"))),
        );
        let plan = plan_phases(&dag, &sliced);
        assert_eq!((plan.nodes, plan.dram_agg), (4, 4));
        // Every tensor carries m: all footprints quarter, nothing crosses
        // the NoC.
        assert!(plan
            .phases
            .iter()
            .flat_map(|p| &p.accesses)
            .all(|a| a.words == 400));
        assert_eq!(plan.noc_hop_words(), 0);
        let staged = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints::partitioned(Partition::by_stage(4)),
        );
        let splan = plan_phases(&dag, &staged);
        assert_eq!((splan.nodes, splan.dram_agg), (4, 1));
        // Two realized edges × 1600 words × 1 hop.
        assert_eq!(splan.noc_hop_words(), 2 * 1600);
    }

    /// A CHORD priority bias shows up in the planned RIFF metadata (and only
    /// for the biased tensor).
    #[test]
    fn plan_applies_chord_bias() {
        let dag = chain(3, 200_000);
        // Cut the chain so T0 round-trips CHORD with real reuse metadata.
        let mut constraints = ScheduleConstraints {
            cut_before: [1, 2].into_iter().collect(),
            ..Default::default()
        };
        let plain = plan_phases(
            &dag,
            &build_schedule_with(&dag, ScheduleOptions::cello(), &constraints),
        );
        constraints
            .chord_priority_bias
            .insert("T0".into(), PriorityBias::Boost(1));
        let boosted = plan_phases(
            &dag,
            &build_schedule_with(&dag, ScheduleOptions::cello(), &constraints),
        );
        let find_write = |plan: &PhasePlan, name: &str| -> (u32, u32) {
            plan.phases
                .iter()
                .flat_map(|p| &p.accesses)
                .find(|a| a.write && a.name == name)
                .map(|a| (a.freq_after, a.dist_after))
                .unwrap()
        };
        let (f0, d0) = find_write(&plain, "T0");
        let (f1, d1) = find_write(&boosted, "T0");
        assert!(f0 > 0 && d0 > 0, "T0 has a real future use");
        assert_eq!(f1, f0.saturating_mul(2));
        assert_eq!(d1, (d0 / 2).max(1));
        // Unbiased tensors are untouched.
        assert_eq!(find_write(&plain, "T1"), find_write(&boosted, "T1"));
    }
}

//! Energy accounting (Fig 14: off-chip; Fig 15b: on-chip per access).
//!
//! Off-chip energy is linear in DRAM bytes. On-chip energy depends on the
//! buffer *mechanism*: caches pay a tag lookup per line access ("tag access
//! energy is comparable to data access energy", §VI-B), explicit structures
//! pay only the small controller overhead, and CHORD pays one 512-bit
//! RIFF-entry read per *operand* (not per line) — the reason its energy is
//! buffet-like despite being implicitly managed.

use cello_mem::model::{AreaEnergyModel, BufferKind};
use cello_mem::stats::AccessStats;

/// On-chip energy in picojoules for a run's SRAM traffic.
///
/// `sram_access_bytes` is the bytes moved per `sram_*_words` unit of `stats`
/// (16 for the line-granular cache backend, the word size otherwise); the
/// model's per-access energies are normalized to 16 B accesses.
pub fn onchip_energy_pj(
    stats: &AccessStats,
    kind: BufferKind,
    sram_bytes: u64,
    sram_access_bytes: f64,
    model: &AreaEnergyModel,
) -> f64 {
    let breakdown = model.energy_breakdown(kind, sram_bytes);
    let bytes_moved = (stats.sram_read_words + stats.sram_write_words) as f64 * sram_access_bytes;
    let line_accesses = bytes_moved / 16.0;
    let data = line_accesses * (breakdown.data + breakdown.controller);
    let tag = match kind {
        // Caches look a tag up on every line access.
        BufferKind::Cache => stats.tag_accesses as f64 * breakdown.tag,
        // CHORD reads one table entry per operand access.
        BufferKind::Chord => stats.tag_accesses as f64 * breakdown.tag,
        // Explicit structures have no lookups.
        BufferKind::Scratchpad | BufferKind::Buffet => 0.0,
    };
    data + tag
}

/// Off-chip energy in picojoules.
pub fn offchip_energy_pj(stats: &AccessStats, pj_per_byte: f64) -> f64 {
    stats.dram_bytes() as f64 * pj_per_byte
}

/// Energy per byte per NoC hop (link traversal + router crossing), pJ.
/// On-chip-network surveys put a 64-bit flit hop at ~10–30 pJ; 2 pJ/B/hop
/// sits in that range and keeps NoC energy well below DRAM's 31.2 pJ/B, as
/// the paper's scalable-dataflow argument requires.
pub const NOC_PJ_PER_HOP_BYTE: f64 = 2.0;

/// NoC energy in picojoules for `hop_bytes` byte-hops (bytes moved weighted
/// by the hops each traversed).
pub fn noc_energy_pj(hop_bytes: u64) -> f64 {
    hop_bytes as f64 * NOC_PJ_PER_HOP_BYTE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(reads: u64, writes: u64, tags: u64, dram: u64) -> AccessStats {
        AccessStats {
            sram_read_words: reads,
            sram_write_words: writes,
            tag_accesses: tags,
            dram_read_bytes: dram,
            ..Default::default()
        }
    }

    #[test]
    fn offchip_linear() {
        let s = stats(0, 0, 0, 1000);
        assert!((offchip_energy_pj(&s, 31.2) - 31_200.0).abs() < 1e-9);
    }

    #[test]
    fn cache_pays_tags_chord_pays_per_operand() {
        let m = AreaEnergyModel::default();
        // Cache: one tag lookup per line access (its stats count lines);
        // CHORD: one table read per operand (say 10).
        let cache_stats = stats(1 << 20, 0, 1 << 20, 0);
        let chord_stats = stats(1 << 20, 0, 10, 0);
        let e_cache = onchip_energy_pj(&cache_stats, BufferKind::Cache, 4 << 20, 16.0, &m);
        let e_chord = onchip_energy_pj(&chord_stats, BufferKind::Chord, 4 << 20, 4.0, &m);
        // Cache moved 16 B per access vs CHORD 4 B per word: normalize by
        // comparing per-byte energy.
        let per_byte_cache = e_cache / ((1u64 << 20) as f64 * 16.0);
        let per_byte_chord = e_chord / ((1u64 << 20) as f64 * 4.0);
        assert!(
            per_byte_cache / per_byte_chord > 1.5,
            "cache {per_byte_cache} vs chord {per_byte_chord}"
        );
    }

    #[test]
    fn explicit_has_no_tag_energy() {
        let m = AreaEnergyModel::default();
        let s = stats(1000, 1000, 999_999, 0);
        let e = onchip_energy_pj(&s, BufferKind::Buffet, 4 << 20, 4.0, &m);
        let e_no_tags = onchip_energy_pj(
            &stats(1000, 1000, 0, 0),
            BufferKind::Buffet,
            4 << 20,
            4.0,
            &m,
        );
        assert_eq!(e, e_no_tags);
    }

    #[test]
    fn energy_scales_with_traffic() {
        let m = AreaEnergyModel::default();
        let e1 = onchip_energy_pj(&stats(1000, 0, 0, 0), BufferKind::Chord, 4 << 20, 4.0, &m);
        let e2 = onchip_energy_pj(&stats(2000, 0, 0, 0), BufferKind::Chord, 4 << 20, 4.0, &m);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}

//! Run reports and summary statistics.
//!
//! The paper reports throughput in **GigaFPMuls/second** (Fig 12/13), DRAM
//! energy relative to the best-intra baseline (Fig 14), and geomeans across
//! datasets/workloads (the headline "4× geomean speedup"). [`RunReport`]
//! carries everything those harnesses need; [`geomean`] implements the
//! aggregation.

use cello_mem::stats::AccessStats;
use serde::{Deserialize, Serialize};

/// Result of simulating one configuration on one workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Configuration name (Table IV row).
    pub config: String,
    /// Workload label.
    pub workload: String,
    /// Total cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Total multiply-accumulates.
    pub macs: u64,
    /// Total DRAM traffic in bytes, **aggregated across nodes** for
    /// multi-node runs (per-node traffic is `dram_bytes / nodes` under rank
    /// partitioning).
    pub dram_bytes: u64,
    /// Accelerator nodes the schedule ran on (1 = single node).
    pub nodes: u64,
    /// NoC traffic in byte-hops (bytes moved × hops traversed); 0 on a
    /// single node.
    pub noc_hop_bytes: u64,
    /// Off-chip energy (pJ), aggregated across nodes.
    pub offchip_energy_pj: f64,
    /// On-chip energy (pJ), aggregated across nodes.
    pub onchip_energy_pj: f64,
    /// NoC energy (pJ).
    pub noc_energy_pj: f64,
    /// Raw access counters — **per node** for multi-node runs (every node
    /// executes the same sliced traffic pattern).
    pub stats: AccessStats,
    /// Per-phase (compute_cycles, memory_cycles) pairs for roofline analysis.
    pub phase_cycles: Vec<(u64, u64)>,
    /// Per-phase DRAM bytes (per node, un-aggregated — the raw deltas the
    /// memory cycles above derive from). One entry per phase plus a final
    /// drain entry when the backend flushed residual state; the repartition
    /// property tests use this to pin per-phase monotonicity.
    pub phase_dram_bytes: Vec<u64>,
    /// Per-phase backend counter deltas (per node), aligned with
    /// `phase_dram_bytes` including the drain entry: read/write split, SRAM
    /// words, and CHORD hit/miss/writeback attribution feeding the
    /// phase-level trace view.
    pub phase_stats: Vec<AccessStats>,
    /// Per-phase NoC hop-words, one entry per *planned* phase — no drain
    /// entry (the drain moves no NoC traffic), so
    /// `phase_cycles.len() > phase_noc_hop_words.len()` is exactly the
    /// "a drain phase exists" predicate trace builders key off.
    pub phase_noc_hop_words: Vec<u64>,
    /// Per-phase **total** cycles as the overlap ledger charged them,
    /// aligned with `phase_cycles` including the drain entry, summing
    /// exactly to `cycles`. Under overlap this is *not* derivable from
    /// `phase_cycles` (the ledger folds NoC time and hidden prefetch into
    /// the charge); `cello_explain` decomposes regressions from it.
    pub phase_total_cycles: Vec<u64>,
}

impl RunReport {
    /// Throughput in GigaFPMuls/second (the Fig 12/13 y-axis).
    pub fn gfpmuls_per_sec(&self) -> f64 {
        self.macs as f64 / self.seconds / 1e9
    }

    /// Achieved arithmetic intensity (ops per DRAM byte).
    pub fn achieved_intensity(&self) -> f64 {
        self.macs as f64 / self.dram_bytes.max(1) as f64
    }

    /// Fraction of cycles spent memory-bound (memory > compute).
    pub fn memory_bound_fraction(&self) -> f64 {
        let total: u64 = self
            .phase_cycles
            .iter()
            .map(|&(c, m)| c.max(m))
            .sum::<u64>()
            .max(1);
        let membound: u64 = self
            .phase_cycles
            .iter()
            .filter(|&&(c, m)| m > c)
            .map(|&(c, m)| c.max(m))
            .sum();
        membound as f64 / total as f64
    }

    /// Speedup of `self` over `baseline`.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.seconds / self.seconds
    }

    /// Off-chip energy of `self` relative to `baseline` (Fig 14's y-axis).
    pub fn relative_energy(&self, baseline: &RunReport) -> f64 {
        self.offchip_energy_pj / baseline.offchip_energy_pj.max(f64::MIN_POSITIVE)
    }
}

/// Geometric mean (empty input → 1.0, matching "no data, no effect").
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats rows as TSV with a header (used by every fig/tab binary; TSV so
/// results diff cleanly and import anywhere).
pub fn tsv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

/// Writes TSV to `results/<name>.tsv` (creating the directory), returning the
/// path. Errors are surfaced to the harness caller.
pub fn write_results(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.tsv"));
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seconds: f64, macs: u64, dram: u64) -> RunReport {
        RunReport {
            config: "test".into(),
            workload: "w".into(),
            cycles: (seconds * 1e9) as u64,
            seconds,
            macs,
            dram_bytes: dram,
            nodes: 1,
            noc_hop_bytes: 0,
            offchip_energy_pj: dram as f64 * 31.2,
            onchip_energy_pj: 0.0,
            noc_energy_pj: 0.0,
            stats: AccessStats::default(),
            phase_cycles: vec![],
            phase_dram_bytes: vec![],
            phase_stats: vec![],
            phase_noc_hop_words: vec![],
            phase_total_cycles: vec![],
        }
    }

    #[test]
    fn throughput_units() {
        let r = report(1e-3, 1_000_000_000, 1);
        assert!((r.gfpmuls_per_sec() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_energy_ratios() {
        let fast = report(1.0, 100, 50);
        let slow = report(4.0, 100, 200);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((fast.relative_energy(&slow) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_fraction() {
        let mut r = report(1.0, 1, 1);
        r.phase_cycles = vec![(10, 90), (50, 10)];
        // Phase 1: 90 cycles memory-bound; phase 2: 50 compute-bound.
        assert!((r.memory_bound_fraction() - 90.0 / 140.0).abs() < 1e-12);
    }

    #[test]
    fn tsv_format() {
        let s = tsv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a\tb\n1\t2\n");
    }
}

//! The RIFF index table (paper Fig 10).
//!
//! One 512-bit entry per tensor — versus one tag per 16 B line in a cache —
//! holding: tensor id, `start_tensor`/`end_tensor` (global address range),
//! `end_chord` (how much of the tensor is resident: CHORD always keeps a
//! contiguous *head* prefix, per PRELUDE), `start_index`/`end_index`
//! (position in the data-array queue), a 64-bit re-reference history, and the
//! RIFF `freq`/`dist` priority fields supplied by SCORE.
//!
//! Because tensors are contiguous and ordered, a hit is one comparison
//! against `end_chord` and the data-array index is pure offset arithmetic —
//! no per-line tag matching (§VI-B "Lower complexity").
//!
//! The paper's pseudocode maintains queue indices incrementally with shifts;
//! we recompute them by prefix-summing resident sizes in queue order after
//! each mutation — semantically identical and trivially invariant-preserving
//! (the incremental shifts are a hardware implementation detail).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// RIFF replacement priority over the SCORE-supplied `(freq, dist)` metadata
/// (Fig 10's columns): the tensor reused **sooner** wins (smaller distance),
/// with more remaining uses breaking ties.
///
/// Distance-primary ordering reproduces the paper's §VI-A example — `R
/// (freq 3, dist 1)` beats `X (freq 1, dist 7)` on both axes — and acts like
/// Belady's MIN at operand granularity. Frequency-primary ordering would let
/// a many-use tensor larger than the whole buffer (CG's `A` on G2_circuit)
/// pin the entire capacity even though its *slots*, if lent to the
/// shorter-lived `R`/`P`/`X`, are re-earned by every iteration's fresh
/// version; dead tensors (`freq == 0`) always rank lowest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RiffPriority {
    /// Remaining scheduled uses of the tensor (Fig 10 `Freq`).
    pub freq: u32,
    /// Operations until the next scheduled use (Fig 10 `Dist`).
    pub dist: u32,
}

impl RiffPriority {
    /// Convenience constructor.
    pub fn new(freq: u32, dist: u32) -> Self {
        Self { freq, dist }
    }

    /// A dead tensor: no future uses.
    pub fn dead() -> Self {
        Self {
            freq: 0,
            dist: u32::MAX,
        }
    }
}

/// Largest honored bias magnitude; levels above it clamp here so a forged
/// or hand-built level can never shift `(freq, dist)` past representability.
pub const MAX_BIAS_LEVEL: u8 = 3;

/// A per-tensor bias on the `(freq, dist)` metadata SCORE hands to RIFF —
/// the schedule-side half of the SCORE-CHORD interface exposed as a search
/// decision. The heuristic derives priorities as *facts* from the DAG; a
/// bias lets the DSE engine overrule them: boosting a tensor makes RIFF
/// treat it as hotter than its derived reuse pattern says (it evicts others
/// more readily and resists eviction), demoting does the opposite. Each
/// variant carries a magnitude level `1..=MAX_BIAS_LEVEL` (clamped in
/// [`Self::apply`]): level `l` scales `freq`/`dist` by `2^l`, so the search
/// can express *how hard* to overrule the derived facts, not just the
/// direction. Dead tensors (`freq == 0`) are never biased — resurrecting a
/// tensor nobody reads again could only waste capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorityBias {
    /// Treat the tensor as reused sooner and more often: `dist` shrinks and
    /// `freq` grows by `2^level`.
    Boost(u8),
    /// Treat the tensor as colder: `dist` grows and `freq` shrinks (floored
    /// at one so the tensor is demoted, not declared dead — full DRAM
    /// demotion is already expressible as a `Binding::Dram` steer) by
    /// `2^level`.
    Demote(u8),
}

impl PriorityBias {
    /// The honored magnitude level: `1..=MAX_BIAS_LEVEL` regardless of what
    /// the variant carries.
    pub fn level(self) -> u8 {
        match self {
            PriorityBias::Boost(l) | PriorityBias::Demote(l) => l.clamp(1, MAX_BIAS_LEVEL),
        }
    }

    /// Applies the bias to a derived `(freq, dist)` pair.
    pub fn apply(self, priority: RiffPriority) -> RiffPriority {
        if priority.freq == 0 {
            return priority; // dead stays dead
        }
        let shift = u32::from(self.level());
        match self {
            PriorityBias::Boost(_) => RiffPriority {
                freq: priority.freq.saturating_mul(1 << shift),
                dist: (priority.dist >> shift).max(1),
            },
            PriorityBias::Demote(_) => RiffPriority {
                freq: (priority.freq >> shift).max(1),
                // Cap below the `dead()` sentinel so a demoted-but-live
                // tensor still outranks a genuinely dead one.
                dist: priority.dist.saturating_mul(1 << shift).min(u32::MAX - 1),
            },
        }
    }
}

impl PartialOrd for RiffPriority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RiffPriority {
    fn cmp(&self, other: &Self) -> Ordering {
        // Dead tensors always lose.
        match (self.freq == 0, other.freq == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        // Smaller dist => higher priority; higher freq breaks ties.
        other
            .dist
            .cmp(&self.dist)
            .then_with(|| self.freq.cmp(&other.freq))
    }
}

/// One RIFF-index-table entry (Fig 10 row). All sizes in words.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TensorEntry {
    /// Tensor id (`A`, `P`, `R`, …).
    pub name: String,
    /// Total tensor length (`end_tensor − start_tensor`).
    pub total_words: u64,
    /// Resident prefix length (`end_chord − start_tensor`). Invariant:
    /// `resident_words ≤ total_words`.
    pub resident_words: u64,
    /// Queue start index (recomputed after each mutation).
    pub start_index: u64,
    /// Queue end index (`start_index + resident_words`).
    pub end_index: u64,
    /// Was the resident data produced on-chip and not yet written to DRAM?
    pub dirty: bool,
    /// RIFF priority (from SCORE).
    pub priority: RiffPriority,
    /// 64-bit re-reference history ("64 ops re-ref without updates", Fig 10):
    /// bit i set = referenced i ops ago.
    pub history: u64,
}

/// The table: entries kept in data-array *queue order* (head first).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RiffIndexTable {
    entries: Vec<TensorEntry>,
    capacity_words: u64,
    max_entries: usize,
}

impl RiffIndexTable {
    /// Table over a data array of `capacity_words`, with at most
    /// `max_entries` tensors (the paper's table has 64 entries of 512 bits).
    pub fn new(capacity_words: u64, max_entries: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity_words,
            max_entries,
        }
    }

    /// Data-array capacity in words.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_words
    }

    /// Repoints the data array at a different capacity (the per-phase SRAM
    /// repartition). The caller — [`crate::chord::Chord::resize`] — must
    /// evict down to the new capacity first; this only moves the boundary.
    pub fn set_capacity_words(&mut self, capacity_words: u64) {
        self.capacity_words = capacity_words;
    }

    /// Total resident words.
    pub fn used_words(&self) -> u64 {
        self.entries.iter().map(|e| e.resident_words).sum()
    }

    /// Free words (saturating: zero while a shrink is in flight).
    pub fn free_words(&self) -> u64 {
        self.capacity_words.saturating_sub(self.used_words())
    }

    /// The lowest-priority resident tensor — the unconditional victim a
    /// capacity shrink evicts from (no requester to compare against, unlike
    /// [`Self::riff_victim`]). Queue order breaks ties, like `riff_victim`.
    pub fn weakest_entry(&self) -> Option<&TensorEntry> {
        self.entries
            .iter()
            .filter(|e| e.resident_words > 0)
            .min_by(|a, b| a.priority.cmp(&b.priority))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no tensors are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in queue order.
    pub fn entries(&self) -> &[TensorEntry] {
        &self.entries
    }

    /// Looks up a tensor.
    pub fn get(&self, name: &str) -> Option<&TensorEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    fn get_mut(&mut self, name: &str) -> Option<&mut TensorEntry> {
        self.entries.iter_mut().find(|e| e.name == name)
    }

    /// Whether a table slot is available for a new tensor.
    pub fn has_slot(&self) -> bool {
        self.entries.len() < self.max_entries
    }

    fn reindex(&mut self) {
        let mut cursor = 0u64;
        for e in &mut self.entries {
            e.start_index = cursor;
            cursor += e.resident_words;
            e.end_index = cursor;
        }
    }

    /// Registers a new tensor (zero resident words yet). Errors when the
    /// table has no free entry.
    pub fn insert(
        &mut self,
        name: &str,
        total_words: u64,
        dirty: bool,
        priority: RiffPriority,
    ) -> Result<(), TableError> {
        if self.get(name).is_some() {
            return Err(TableError::Duplicate);
        }
        if !self.has_slot() {
            return Err(TableError::TableFull);
        }
        self.entries.push(TensorEntry {
            name: name.to_string(),
            total_words,
            resident_words: 0,
            start_index: 0,
            end_index: 0,
            dirty,
            priority,
            history: 1, // referenced "now"
        });
        self.reindex();
        Ok(())
    }

    /// Grows a tensor's resident prefix by `words` (PRELUDE enqueue /
    /// enqueue-in-place). Panics if capacity would be exceeded — callers must
    /// check [`Self::free_words`] first; this models the hardware invariant.
    pub fn grow(&mut self, name: &str, words: u64) {
        assert!(
            words <= self.free_words(),
            "grow({name}, {words}) exceeds free space {}",
            self.free_words()
        );
        let e = self.get_mut(name).expect("grow of unknown tensor");
        assert!(
            e.resident_words + words <= e.total_words,
            "resident would exceed tensor size"
        );
        e.resident_words += words;
        self.reindex();
    }

    /// Shrinks a tensor's *tail* by `words` (RIFF victim eviction). Returns
    /// the words actually removed (≤ requested). Removes the entry when its
    /// residency reaches zero.
    pub fn shrink_tail(&mut self, name: &str, words: u64) -> u64 {
        let Some(e) = self.get_mut(name) else {
            return 0;
        };
        let taken = words.min(e.resident_words);
        e.resident_words -= taken;
        if e.resident_words == 0 {
            self.entries.retain(|x| x.name != name);
        }
        self.reindex();
        taken
    }

    /// Drops a tensor entirely (tensor death).
    pub fn remove(&mut self, name: &str) -> Option<TensorEntry> {
        let idx = self.entries.iter().position(|e| e.name == name)?;
        let e = self.entries.remove(idx);
        self.reindex();
        Some(e)
    }

    /// Updates a tensor's priority (SCORE metadata refresh).
    pub fn set_priority(&mut self, name: &str, priority: RiffPriority) {
        if let Some(e) = self.get_mut(name) {
            e.priority = priority;
        }
    }

    /// Marks the resident prefix clean (after a writeback).
    pub fn mark_clean(&mut self, name: &str) {
        if let Some(e) = self.get_mut(name) {
            e.dirty = false;
        }
    }

    /// Advances every history register by one op; sets the referenced bit of
    /// `touched` tensors.
    pub fn tick_history(&mut self, touched: &[&str]) {
        for e in &mut self.entries {
            e.history <<= 1;
            if touched.contains(&e.name.as_str()) {
                e.history |= 1;
            }
        }
    }

    /// RIFF victim search: the lowest-priority resident tensor with priority
    /// *strictly below* `requester_priority`, never the requester itself.
    /// Queue order breaks ties (earlier tensors evicted first).
    pub fn riff_victim(
        &self,
        requester: &str,
        requester_priority: RiffPriority,
    ) -> Option<&TensorEntry> {
        self.entries
            .iter()
            .filter(|e| e.name != requester && e.resident_words > 0)
            .filter(|e| e.priority < requester_priority)
            .min_by(|a, b| a.priority.cmp(&b.priority))
    }

    /// Validates all structural invariants (used by tests/proptests):
    /// queue indices contiguous from 0, residency ≤ tensor size, occupancy ≤
    /// capacity, entry count ≤ table size.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut cursor = 0u64;
        for e in &self.entries {
            if e.start_index != cursor {
                return Err(format!(
                    "{}: start_index {} != {}",
                    e.name, e.start_index, cursor
                ));
            }
            if e.end_index != e.start_index + e.resident_words {
                return Err(format!("{}: end_index mismatch", e.name));
            }
            if e.resident_words > e.total_words {
                return Err(format!("{}: resident > total", e.name));
            }
            cursor = e.end_index;
        }
        if cursor > self.capacity_words {
            return Err(format!(
                "occupancy {cursor} > capacity {}",
                self.capacity_words
            ));
        }
        if self.entries.len() > self.max_entries {
            return Err("table overfull".into());
        }
        Ok(())
    }
}

/// Errors from table operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableError {
    /// All 64 entries in use.
    TableFull,
    /// Tensor already registered.
    Duplicate,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_matches_paper_example() {
        // R (freq 3, dist 1) > X (freq 1, dist 7) — the §VI-A example.
        let r = RiffPriority::new(3, 1);
        let x = RiffPriority::new(1, 7);
        assert!(r > x);
        // Distance decides first: A (freq 10, dist 7) loses to R (dist 1)…
        let a = RiffPriority::new(10, 7);
        assert!(r > a);
        // …but beats X (same dist, more uses).
        assert!(a > x);
        // Equal dist: higher frequency wins; equal freq: closer reuse wins.
        assert!(RiffPriority::new(5, 3) > RiffPriority::new(2, 3));
        assert!(RiffPriority::new(3, 1) > RiffPriority::new(3, 5));
        // Dead tensors always lose, whatever their recorded distance.
        assert!(RiffPriority::dead() < x);
        assert!(RiffPriority::dead() < RiffPriority::new(1, u32::MAX - 1));
    }

    /// Boost strengthens on both axes, demote weakens on both, and neither
    /// can kill (or resurrect) a tensor.
    #[test]
    fn priority_bias_shifts_rank_but_never_kills() {
        let p = RiffPriority::new(3, 8);
        let boosted = PriorityBias::Boost(1).apply(p);
        let demoted = PriorityBias::Demote(1).apply(p);
        assert_eq!(boosted, RiffPriority::new(6, 4));
        assert_eq!(demoted, RiffPriority::new(1, 16));
        assert!(boosted > p && p > demoted);
        // Demote floors freq at 1 and caps dist below the dead sentinel.
        let weak = PriorityBias::Demote(1).apply(RiffPriority::new(1, u32::MAX - 1));
        assert!(weak.freq == 1 && weak > RiffPriority::dead());
        // Dead tensors pass through untouched.
        assert_eq!(
            PriorityBias::Boost(1).apply(RiffPriority::dead()),
            RiffPriority::dead()
        );
        // Boost keeps dist at least 1 (reuse "now" is not expressible).
        assert_eq!(
            PriorityBias::Boost(1).apply(RiffPriority::new(2, 1)).dist,
            1
        );
    }

    /// Magnitude levels scale both axes by `2^level`; out-of-range levels
    /// clamp into `1..=MAX_BIAS_LEVEL`, so level monotonicity holds at the
    /// extremes too.
    #[test]
    fn priority_bias_levels_are_graded_and_clamped() {
        let p = RiffPriority::new(4, 32);
        assert_eq!(PriorityBias::Boost(2).apply(p), RiffPriority::new(16, 8));
        assert_eq!(PriorityBias::Boost(3).apply(p), RiffPriority::new(32, 4));
        assert_eq!(PriorityBias::Demote(2).apply(p), RiffPriority::new(1, 128));
        assert_eq!(PriorityBias::Demote(3).apply(p), RiffPriority::new(1, 256));
        // Level 0 and level 200 clamp to the honored range.
        assert_eq!(
            PriorityBias::Boost(0).apply(p),
            PriorityBias::Boost(1).apply(p)
        );
        assert_eq!(
            PriorityBias::Demote(200).apply(p),
            PriorityBias::Demote(MAX_BIAS_LEVEL).apply(p)
        );
        // Stronger boosts never rank below weaker ones.
        assert!(PriorityBias::Boost(3).apply(p) > PriorityBias::Boost(1).apply(p));
        assert!(PriorityBias::Demote(3).apply(p) < PriorityBias::Demote(1).apply(p));
    }

    #[test]
    fn insert_grow_indices() {
        let mut t = RiffIndexTable::new(100, 64);
        t.insert("A", 80, false, RiffPriority::new(10, 7)).unwrap();
        t.grow("A", 50);
        t.insert("P", 40, true, RiffPriority::new(3, 1)).unwrap();
        t.grow("P", 30);
        let a = t.get("A").unwrap();
        let p = t.get("P").unwrap();
        assert_eq!((a.start_index, a.end_index), (0, 50));
        assert_eq!((p.start_index, p.end_index), (50, 80));
        assert_eq!(t.free_words(), 20);
        t.check_invariants().unwrap();
    }

    #[test]
    fn grow_in_place_shifts_later_entries() {
        // Paper's "enqueue in place": growing a non-tail tensor shifts
        // everything after it.
        let mut t = RiffIndexTable::new(100, 64);
        t.insert("A", 60, false, RiffPriority::new(5, 1)).unwrap();
        t.grow("A", 20);
        t.insert("B", 40, false, RiffPriority::new(5, 2)).unwrap();
        t.grow("B", 40);
        t.grow("A", 20); // A grows in place
        let b = t.get("B").unwrap();
        assert_eq!((b.start_index, b.end_index), (40, 80));
        t.check_invariants().unwrap();
    }

    #[test]
    fn shrink_tail_removes_empty_entries() {
        let mut t = RiffIndexTable::new(100, 64);
        t.insert("X", 50, true, RiffPriority::new(1, 7)).unwrap();
        t.grow("X", 50);
        assert_eq!(t.shrink_tail("X", 20), 20);
        assert_eq!(t.get("X").unwrap().resident_words, 30);
        assert_eq!(t.shrink_tail("X", 100), 30); // clamped
        assert!(t.get("X").is_none());
        t.check_invariants().unwrap();
    }

    #[test]
    fn riff_victim_selection() {
        let mut t = RiffIndexTable::new(100, 64);
        t.insert("A", 40, false, RiffPriority::new(10, 7)).unwrap();
        t.grow("A", 40);
        t.insert("X", 40, true, RiffPriority::new(1, 7)).unwrap();
        t.grow("X", 40);
        // Requester R (freq 3, dist 1): victim must be X, not A.
        let v = t.riff_victim("R", RiffPriority::new(3, 1)).unwrap();
        assert_eq!(v.name, "X");
        // Requester weaker than everyone: no victim.
        assert!(t.riff_victim("W", RiffPriority::new(0, 9)).is_none());
        // Requester never evicts itself.
        assert!(t.riff_victim("X", RiffPriority::new(1, 7)).is_none());
    }

    #[test]
    fn table_slot_limit() {
        let mut t = RiffIndexTable::new(1000, 2);
        t.insert("A", 10, false, RiffPriority::new(1, 1)).unwrap();
        t.insert("B", 10, false, RiffPriority::new(1, 1)).unwrap();
        assert_eq!(
            t.insert("C", 10, false, RiffPriority::new(1, 1)),
            Err(TableError::TableFull)
        );
        assert_eq!(
            t.insert("A", 10, false, RiffPriority::new(1, 1)),
            Err(TableError::Duplicate)
        );
    }

    #[test]
    fn history_tracks_re_references() {
        let mut t = RiffIndexTable::new(100, 64);
        t.insert("A", 10, false, RiffPriority::new(5, 1)).unwrap();
        t.tick_history(&[]);
        t.tick_history(&["A"]);
        t.tick_history(&[]);
        // initial 1 -> shifted 3x with one touch: 0b1010
        assert_eq!(t.get("A").unwrap().history, 0b1010);
    }

    #[test]
    #[should_panic(expected = "exceeds free space")]
    fn grow_past_capacity_panics() {
        let mut t = RiffIndexTable::new(10, 64);
        t.insert("A", 100, false, RiffPriority::new(1, 1)).unwrap();
        t.grow("A", 11);
    }

    #[test]
    fn set_priority_and_mark_clean() {
        let mut t = RiffIndexTable::new(100, 64);
        t.insert("A", 10, true, RiffPriority::new(5, 1)).unwrap();
        t.set_priority("A", RiffPriority::new(4, 2));
        assert_eq!(t.get("A").unwrap().priority, RiffPriority::new(4, 2));
        t.mark_clean("A");
        assert!(!t.get("A").unwrap().dirty);
    }
}

//! The CHORD buffer mechanism: PRELUDE fill/spill + RIFF tail replacement.
//!
//! Semantics (paper §VI-A, Fig 9/10):
//!
//! - **Produce** (an operation writes its output tensor): the head of the
//!   tensor fills free space (PRELUDE keeps the *head* because it will be
//!   re-referenced first — the opposite of LRU's keep-the-most-recent). When
//!   space runs out, RIFF searches for a victim tensor with strictly lower
//!   (frequency, distance) priority and evicts words from the **victim's
//!   tail**; when no victim exists, the remaining words spill straight to
//!   DRAM.
//! - **Fetch** (a DRAM-resident input streams on-chip for the first time):
//!   same enqueue path, but the data is *clean* — spilling or evicting it
//!   costs nothing beyond the lost reuse.
//! - **Consume** (an operation reads a tensor): the resident head prefix hits
//!   in SRAM (`req.addr < end_chord`, one comparison); the non-resident tail
//!   streams from DRAM. When SCORE's metadata says this was the last use, the
//!   entry is retired — dirty words of a dead tensor are simply dropped.
//! - Evicted dirty words with future uses are written back to DRAM at
//!   eviction time; nothing is ever written back twice.
//!
//! Every word is accounted exactly once (see [`TensorAudit`]); the property
//! tests in this module and `tests/` enforce conservation.

use super::table::{RiffIndexTable, RiffPriority, TableError};
use cello_mem::stats::AccessStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which replacement machinery is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChordPolicyKind {
    /// PRELUDE only: fill free space head-first, spill the rest, never evict
    /// another tensor (the §VII-C3 ablation configuration).
    PreludeOnly,
    /// Full CHORD: PRELUDE + RIFF tail replacement.
    PreludeRiff,
}

/// CHORD configuration (Table V: 4 MB data array, 64-entry RIFF table).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChordConfig {
    /// Data-array capacity in words.
    pub capacity_words: u64,
    /// Bytes per word (4 for CG/GNN, 2 for ResNet — Table VII).
    pub word_bytes: u32,
    /// Active policy.
    pub policy: ChordPolicyKind,
    /// RIFF-index-table entries (64 in the paper).
    pub max_entries: usize,
}

impl ChordConfig {
    /// The paper's configuration: 4 MB at `word_bytes`-byte words.
    pub fn paper_4mb(word_bytes: u32) -> Self {
        Self {
            capacity_words: (4 << 20) / word_bytes as u64,
            word_bytes,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: 64,
        }
    }
}

/// Outcome of a consume: how many words hit on-chip vs streamed from DRAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsumeResult {
    /// Words served from the CHORD data array.
    pub hit_words: u64,
    /// Words fetched from DRAM.
    pub miss_words: u64,
}

/// Per-tensor word-conservation ledger (for tests and reporting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorAudit {
    /// Words produced on-chip (dirty creation).
    pub produced: u64,
    /// Words fetched from DRAM (clean fill attempt).
    pub fetched: u64,
    /// Dirty words spilled to DRAM at produce time (PRELUDE tail spill).
    pub spilled: u64,
    /// Clean words that never got a slot.
    pub uncached: u64,
    /// Dirty words written back when RIFF evicted them.
    pub evicted_dirty: u64,
    /// Clean words RIFF evicted (no DRAM cost).
    pub evicted_clean: u64,
    /// Resident words discarded at tensor death.
    pub dropped: u64,
}

/// The CHORD buffer.
///
/// ```
/// use cello_core::chord::{Chord, ChordConfig, ChordPolicyKind, RiffPriority};
///
/// let mut chord = Chord::new(ChordConfig {
///     capacity_words: 1_000,
///     word_bytes: 4,
///     policy: ChordPolicyKind::PreludeRiff,
///     max_entries: 64,
/// });
/// // A 1500-word tensor: PRELUDE keeps the 1000-word head, spills the tail.
/// let spilled = chord.produce("P", 1_500, RiffPriority::new(2, 1));
/// assert_eq!(spilled, 500);
/// // Reading it back hits the resident head and streams the tail from DRAM.
/// let r = chord.consume("P", None);
/// assert_eq!((r.hit_words, r.miss_words), (1_000, 500));
/// chord.check_conservation().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Chord {
    cfg: ChordConfig,
    table: RiffIndexTable,
    stats: AccessStats,
    audit: BTreeMap<String, TensorAudit>,
}

impl Chord {
    /// Creates an empty CHORD.
    pub fn new(cfg: ChordConfig) -> Self {
        Self {
            table: RiffIndexTable::new(cfg.capacity_words, cfg.max_entries),
            cfg,
            stats: AccessStats::default(),
            audit: BTreeMap::new(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> ChordConfig {
        self.cfg
    }

    /// The RIFF index table (read-only view).
    pub fn table(&self) -> &RiffIndexTable {
        &self.table
    }

    /// Traffic statistics.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Conservation ledger for a tensor.
    pub fn audit(&self, name: &str) -> TensorAudit {
        self.audit.get(name).copied().unwrap_or_default()
    }

    fn audit_mut(&mut self, name: &str) -> &mut TensorAudit {
        self.audit.entry(name.to_string()).or_default()
    }

    fn bytes(&self, words: u64) -> u64 {
        words * self.cfg.word_bytes as u64
    }

    /// Evicts `take` words from `victim_name`'s tail and settles the
    /// accounting — the one place eviction bookkeeping lives (RIFF admit
    /// and the per-phase resize both route here). Dirty victims have future
    /// uses (dead tensors are retired eagerly), so their tail must persist
    /// to DRAM; clean tails evict for free. Returns words actually taken.
    fn evict_tail(&mut self, victim_name: &str, victim_dirty: bool, take: u64) -> u64 {
        let taken = self.table.shrink_tail(victim_name, take);
        if victim_dirty {
            self.stats.dram_write_bytes += self.bytes(taken);
            self.stats.writebacks += 1;
            self.audit_mut(victim_name).evicted_dirty += taken;
        } else {
            self.audit_mut(victim_name).evicted_clean += taken;
        }
        taken
    }

    /// Shared enqueue path: admit as much of `words` as policy allows for
    /// `name` (already inserted in the table). Returns words admitted.
    fn admit(&mut self, name: &str, words: u64, priority: RiffPriority) -> u64 {
        let mut admitted = words.min(self.table.free_words());
        // Entry may itself be capped by the tensor's size (enforced by grow).
        if admitted > 0 {
            self.table.grow(name, admitted);
        }
        let mut remaining = words - admitted;
        if self.cfg.policy == ChordPolicyKind::PreludeRiff {
            while remaining > 0 {
                let Some(victim) = self.table.riff_victim(name, priority) else {
                    break;
                };
                let victim_name = victim.name.clone();
                let victim_dirty = victim.dirty;
                let take = remaining.min(victim.resident_words);
                let taken = self.evict_tail(&victim_name, victim_dirty, take);
                self.table.grow(name, taken);
                admitted += taken;
                remaining -= taken;
            }
        }
        self.stats.sram_write_words += admitted;
        admitted
    }

    /// An operation writes its freshly produced output tensor (dirty data).
    /// Returns the number of words that spilled to DRAM.
    ///
    /// # Panics
    /// Panics if the tensor is already registered — the DAG must use versioned
    /// tensor names (`X@2`), one per produced value.
    pub fn produce(&mut self, name: &str, words: u64, priority: RiffPriority) -> u64 {
        match self.table.insert(name, words, true, priority) {
            Ok(()) => {}
            Err(TableError::TableFull) => {
                // No metadata slot: the whole tensor streams to DRAM.
                self.stats.dram_write_bytes += self.bytes(words);
                let a = self.audit_mut(name);
                a.produced += words;
                a.spilled += words;
                return words;
            }
            Err(TableError::Duplicate) => panic!("produce of duplicate tensor {name}"),
        }
        let admitted = self.admit(name, words, priority);
        let spill = words - admitted;
        if spill > 0 {
            // PRELUDE: the tail that does not fit goes straight to DRAM.
            self.stats.dram_write_bytes += self.bytes(spill);
        }
        let a = self.audit_mut(name);
        a.produced += words;
        a.spilled += spill;
        spill
    }

    /// A DRAM-resident tensor streams on-chip for the first time (clean).
    /// Charges the full DRAM read; caches what fits for future uses.
    pub fn fetch(&mut self, name: &str, words: u64, priority: RiffPriority) {
        self.stats.dram_read_bytes += self.bytes(words);
        let admitted = match self.table.insert(name, words, false, priority) {
            Ok(()) => self.admit(name, words, priority),
            Err(TableError::TableFull) => 0,
            Err(TableError::Duplicate) => panic!("fetch of duplicate tensor {name}"),
        };
        let a = self.audit_mut(name);
        a.fetched += words;
        a.uncached += words - admitted;
    }

    /// An operation reads a tensor. The resident head hits; the rest streams
    /// from DRAM. `next_priority = None` (or `freq == 0`) marks the last use:
    /// the entry is retired and dead dirty words are dropped.
    pub fn consume(&mut self, name: &str, next_priority: Option<RiffPriority>) -> ConsumeResult {
        let (resident, total) = match self.table.get(name) {
            Some(e) => (e.resident_words, e.total_words),
            None => {
                // Fully spilled / never cached: the caller still knows the
                // footprint, but we don't — callers use `consume_absent`.
                panic!(
                    "consume of unknown tensor {name}; use consume_absent for fully-DRAM tensors"
                )
            }
        };
        let miss = total - resident;
        self.stats.sram_read_words += resident;
        self.stats.tag_accesses += 1; // one end_chord comparison per operand
        self.stats.hits += resident;
        self.stats.misses += miss;
        self.stats.dram_read_bytes += self.bytes(miss);
        self.table.tick_history(&[name]);
        match next_priority {
            Some(p) if p.freq > 0 => self.table.set_priority(name, p),
            _ => self.retire(name),
        }
        ConsumeResult {
            hit_words: resident,
            miss_words: miss,
        }
    }

    /// Reads a tensor that has no CHORD entry at all (e.g. produced when the
    /// table was full): pure DRAM streaming.
    pub fn consume_absent(&mut self, words: u64) -> ConsumeResult {
        self.stats.misses += words;
        self.stats.dram_read_bytes += self.bytes(words);
        ConsumeResult {
            hit_words: 0,
            miss_words: words,
        }
    }

    /// Drops a tensor (death). Dead data needs no writeback — nobody will
    /// read it again (this is where CHORD beats a cache, which would
    /// eventually write the dead dirty lines back).
    pub fn retire(&mut self, name: &str) {
        if let Some(e) = self.table.remove(name) {
            self.audit_mut(name).dropped += e.resident_words;
        }
    }

    /// Refreshes a tensor's RIFF priority (SCORE metadata update as the
    /// schedule advances).
    pub fn update_priority(&mut self, name: &str, priority: RiffPriority) {
        self.table.set_priority(name, priority);
    }

    /// Resizes the data array (the per-phase SRAM repartition, applied at a
    /// phase boundary). Growing frees space immediately; shrinking evicts
    /// lowest-priority tails until the residents fit, and — exactly like a
    /// RIFF eviction — a dirty tail with future uses persists to DRAM: that
    /// writeback is the repartition's resize traffic. Resizing to the
    /// current capacity is a strict no-op (the uniform-split path).
    pub fn resize(&mut self, capacity_words: u64) {
        let mut used = self.table.used_words();
        while used > capacity_words {
            let victim = self
                .table
                .weakest_entry()
                .expect("used > 0 implies a resident entry");
            let victim_name = victim.name.clone();
            let victim_dirty = victim.dirty;
            let take = (used - capacity_words).min(victim.resident_words);
            used -= self.evict_tail(&victim_name, victim_dirty, take);
        }
        self.table.set_capacity_words(capacity_words);
        self.cfg.capacity_words = capacity_words;
    }

    /// Current occupancy in words.
    pub fn used_words(&self) -> u64 {
        self.table.used_words()
    }

    /// Verifies word conservation for every tensor ever seen plus table
    /// invariants. Returns a description of the first violation.
    pub fn check_conservation(&self) -> Result<(), String> {
        self.table.check_invariants()?;
        for (name, a) in &self.audit {
            let resident = self.table.get(name).map(|e| e.resident_words).unwrap_or(0);
            if a.produced > 0 {
                let accounted = a.spilled + a.evicted_dirty + a.dropped + resident;
                if accounted != a.produced {
                    return Err(format!(
                        "{name}: produced {} != spilled {} + evicted {} + dropped {} + resident {resident}",
                        a.produced, a.spilled, a.evicted_dirty, a.dropped
                    ));
                }
            }
            if a.fetched > 0 {
                let accounted = a.uncached + a.evicted_clean + a.dropped + resident;
                if accounted != a.fetched {
                    return Err(format!(
                        "{name}: fetched {} != uncached {} + evicted {} + dropped {} + resident {resident}",
                        a.fetched, a.uncached, a.evicted_clean, a.dropped
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chord(capacity: u64) -> Chord {
        Chord::new(ChordConfig {
            capacity_words: capacity,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: 64,
        })
    }

    fn prelude_only(capacity: u64) -> Chord {
        Chord::new(ChordConfig {
            capacity_words: capacity,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeOnly,
            max_entries: 64,
        })
    }

    /// Fig 9 left (PRELUDE): tensor P larger than the buffer — head stays,
    /// tail spills to DRAM; the later read hits the head.
    #[test]
    fn prelude_keeps_head_spills_tail() {
        let mut c = chord(100);
        let spill = c.produce("P", 150, RiffPriority::new(2, 1));
        assert_eq!(spill, 50);
        assert_eq!(c.stats().dram_write_bytes, 50 * 4);
        let r = c.consume("P", Some(RiffPriority::new(1, 3)));
        assert_eq!(r.hit_words, 100);
        assert_eq!(r.miss_words, 50);
        c.check_conservation().unwrap();
    }

    /// Fig 9 right (RIFF): X resident, higher-priority R arrives — X's tail
    /// is evicted (written back, X is dirty with future use) to admit R.
    #[test]
    fn riff_evicts_lower_priority_tail() {
        let mut c = chord(100);
        c.produce("X", 80, RiffPriority::new(1, 7));
        let spill = c.produce("R", 60, RiffPriority::new(3, 1));
        assert_eq!(spill, 0, "R should fully fit by evicting X's tail");
        let x = c.table().get("X").unwrap();
        assert_eq!(x.resident_words, 40); // lost 40 of 80
        assert_eq!(c.table().get("R").unwrap().resident_words, 60);
        // X's evicted dirty tail was written back exactly once.
        assert_eq!(c.audit("X").evicted_dirty, 40);
        assert_eq!(c.stats().dram_write_bytes, 40 * 4);
        c.check_conservation().unwrap();
    }

    /// PRELUDE-only never evicts: the weaker-policy ablation of §VII-C3.
    #[test]
    fn prelude_only_never_evicts() {
        let mut c = prelude_only(100);
        c.produce("X", 80, RiffPriority::new(1, 7));
        let spill = c.produce("R", 60, RiffPriority::new(3, 1));
        assert_eq!(spill, 40); // only free space admitted
        assert_eq!(c.table().get("X").unwrap().resident_words, 80);
        c.check_conservation().unwrap();
    }

    /// The requester never evicts a tensor of equal or higher priority.
    #[test]
    fn riff_respects_priority_order() {
        let mut c = chord(100);
        c.produce("A", 100, RiffPriority::new(10, 7));
        // W is reused later than A (dist 9 > 7): it must spill, not evict A.
        let spill = c.produce("W", 50, RiffPriority::new(2, 9));
        assert_eq!(spill, 50, "weaker tensor must spill, not evict A");
        assert_eq!(c.table().get("A").unwrap().resident_words, 100);
        c.check_conservation().unwrap();
    }

    /// Clean (fetched) tensors evict for free — no writeback traffic.
    #[test]
    fn clean_eviction_costs_nothing() {
        let mut c = chord(100);
        c.fetch("A", 100, RiffPriority::new(1, 9));
        let writes_before = c.stats().dram_write_bytes;
        c.produce("R", 60, RiffPriority::new(3, 1));
        assert_eq!(c.stats().dram_write_bytes, writes_before);
        assert_eq!(c.audit("A").evicted_clean, 60);
        c.check_conservation().unwrap();
    }

    /// Dead tensors drop without writeback (cache would write dirty lines back).
    #[test]
    fn last_use_drops_dirty_data() {
        let mut c = chord(100);
        c.produce("S", 80, RiffPriority::new(2, 1));
        c.consume("S", Some(RiffPriority::new(1, 2)));
        let writes_before = c.stats().dram_write_bytes;
        c.consume("S", None); // last use
        assert_eq!(c.stats().dram_write_bytes, writes_before);
        assert!(c.table().get("S").is_none());
        assert_eq!(c.audit("S").dropped, 80);
        c.check_conservation().unwrap();
    }

    /// Consume hit/miss accounting matches residency.
    #[test]
    fn consume_counts_hits_and_misses() {
        let mut c = chord(50);
        c.produce("P", 80, RiffPriority::new(2, 1)); // 50 resident, 30 spilled
        let r = c.consume("P", Some(RiffPriority::new(1, 4)));
        assert_eq!(r.hit_words, 50);
        assert_eq!(r.miss_words, 30);
        assert_eq!(c.stats().dram_read_bytes, 30 * 4);
        assert_eq!(c.stats().hits, 50);
        assert_eq!(c.stats().misses, 30);
    }

    /// Fetch charges the full cold read and caches the admitted prefix.
    #[test]
    fn fetch_cold_read_and_cache() {
        let mut c = chord(60);
        c.fetch("A", 100, RiffPriority::new(10, 1));
        assert_eq!(c.stats().dram_read_bytes, 100 * 4);
        assert_eq!(c.table().get("A").unwrap().resident_words, 60);
        assert_eq!(c.audit("A").uncached, 40);
        // Second use: 60 hit, 40 from DRAM.
        let r = c.consume("A", Some(RiffPriority::new(9, 7)));
        assert_eq!(r.hit_words, 60);
        assert_eq!(r.miss_words, 40);
        c.check_conservation().unwrap();
    }

    /// Table-full produce degrades to full streaming.
    #[test]
    fn table_full_streams_through() {
        let mut c = Chord::new(ChordConfig {
            capacity_words: 1000,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: 1,
        });
        c.produce("T0", 10, RiffPriority::new(9, 1));
        let spill = c.produce("T1", 10, RiffPriority::new(9, 1));
        assert_eq!(spill, 10);
        let r = c.consume_absent(10);
        assert_eq!(r.miss_words, 10);
        c.check_conservation().unwrap();
    }

    /// Multi-victim cascade: one strong arrival can evict several weak tails.
    #[test]
    fn riff_cascades_across_victims() {
        let mut c = chord(90);
        c.produce("X1", 30, RiffPriority::new(1, 9));
        c.produce("X2", 30, RiffPriority::new(1, 8));
        c.produce("X3", 30, RiffPriority::new(2, 5));
        let spill = c.produce("R", 70, RiffPriority::new(5, 1));
        assert_eq!(spill, 0);
        // Lowest priorities fully evicted first (X1 freq1 dist9 < X2 freq1 dist8).
        assert!(c.table().get("X1").is_none());
        assert!(c.table().get("X2").is_none());
        assert_eq!(c.table().get("X3").unwrap().resident_words, 20);
        assert_eq!(c.used_words(), 90);
        c.check_conservation().unwrap();
    }

    /// Priority updates change future victim selection.
    #[test]
    fn priority_update_changes_behavior() {
        let mut c = chord(100);
        c.produce("S", 100, RiffPriority::new(3, 1));
        // S's uses get consumed; its priority decays below newcomer R's.
        c.update_priority("S", RiffPriority::new(1, 6));
        c.produce("R", 50, RiffPriority::new(2, 1));
        assert_eq!(c.table().get("S").unwrap().resident_words, 50);
        c.check_conservation().unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate tensor")]
    fn duplicate_produce_panics() {
        let mut c = chord(100);
        c.produce("S", 10, RiffPriority::new(1, 1));
        c.produce("S", 10, RiffPriority::new(1, 1));
    }

    /// Shrinking the data array (per-phase repartition) evicts junior tails
    /// and charges dirty writebacks; growing frees space; same-capacity
    /// resize is a strict no-op. Conservation holds throughout.
    #[test]
    fn resize_evicts_junior_tails_and_charges_writebacks() {
        let mut c = chord(100);
        c.produce("S", 60, RiffPriority::new(3, 1)); // senior, dirty
        c.fetch("A", 40, RiffPriority::new(1, 9)); // junior, clean
        let before = c.stats();
        // No-op resize: nothing moves, no traffic.
        c.resize(100);
        assert_eq!(c.stats(), before);
        assert_eq!(c.used_words(), 100);
        // Shrink to 70: the junior clean A loses 30 words for free.
        c.resize(70);
        assert_eq!(c.config().capacity_words, 70);
        assert_eq!(c.table().get("A").unwrap().resident_words, 10);
        assert_eq!(c.table().get("S").unwrap().resident_words, 60);
        assert_eq!(c.stats().dram_write_bytes, before.dram_write_bytes);
        assert_eq!(c.audit("A").evicted_clean, 30);
        // Shrink to 40: A fully evicted (entry retired), then S's dirty
        // tail pays 20 words of writeback — the resize traffic.
        c.resize(40);
        assert!(c.table().get("A").is_none());
        assert_eq!(c.table().get("S").unwrap().resident_words, 40);
        assert_eq!(c.stats().dram_write_bytes, before.dram_write_bytes + 20 * 4);
        assert_eq!(c.audit("S").evicted_dirty, 20);
        c.check_conservation().unwrap();
        // Grow back: free space reappears, nothing is resurrected.
        c.resize(100);
        assert_eq!(c.used_words(), 40);
        assert_eq!(c.table().free_words(), 60);
        c.check_conservation().unwrap();
    }

    /// Infinite capacity ⇒ zero DRAM traffic for intermediates.
    #[test]
    fn infinite_capacity_full_reuse() {
        let mut c = chord(u64::MAX / 8);
        c.produce("S", 1_000_000, RiffPriority::new(2, 1));
        let r1 = c.consume("S", Some(RiffPriority::new(1, 3)));
        let r2 = c.consume("S", None);
        assert_eq!(r1.miss_words + r2.miss_words, 0);
        assert_eq!(c.stats().dram_bytes(), 0);
        c.check_conservation().unwrap();
    }
}

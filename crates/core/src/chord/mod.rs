//! CHORD — Capacity Handling via Operand-level Reuse of Data (§VI).
//!
//! CHORD is a *hybrid* buffer: coarse-grained placement information is
//! **explicit** (SCORE supplies each tensor's address range, reuse frequency
//! and reuse distance), while cycle-level placement/replacement decisions are
//! **implicit** (hardware policies). Compared to a cache it holds one metadata
//! entry per *tensor* instead of per line; compared to a scratchpad it removes
//! the ~10⁸⁰-choice static allocation problem (§VI-B).
//!
//! Module layout:
//! - [`table`]: the RIFF index table (Fig 10) — per-tensor address ranges,
//!   queue indices, re-reference history, frequency and distance;
//! - [`buffer`]: the buffer mechanism itself — the PRELUDE fill/spill path and
//!   the RIFF tail-replacement path, with full traffic accounting.

pub mod buffer;
pub mod table;

pub use buffer::{Chord, ChordConfig, ChordPolicyKind, ConsumeResult, TensorAudit};
pub use table::{PriorityBias, RiffIndexTable, RiffPriority, TensorEntry, MAX_BIAS_LEVEL};

//! # cello-core — the CELLO contribution: SCORE + CHORD
//!
//! This crate implements the paper's two co-designed novelties and the glue
//! between them:
//!
//! - [`chord`]: the hybrid implicit/explicit buffer (§VI). Placement and
//!   replacement happen at **operand** (tensor) granularity: the
//!   [`chord::RiffIndexTable`] holds one 512-bit entry per tensor (Fig 10),
//!   the **PRELUDE** policy keeps the *head* of a spilling tensor resident and
//!   sends the tail to DRAM (Fig 9 left), and the **RIFF** policy evicts the
//!   tail of the lowest-priority resident tensor — priority = (reuse
//!   frequency, reuse distance) supplied by SCORE — to admit a hotter one
//!   (Fig 9 right).
//! - [`score`]: the software scheduler (§V). [`score::classify`] is
//!   Algorithm 2 (sequential / pipelineable / delayed-hold /
//!   delayed-writeback / parallel-multicast), [`score::loop_order`] enforces
//!   the pipelining co-dependence rules, [`score::binding`] forms pipeline
//!   clusters (Fig 8) and steers each tensor to RF / pipeline buffer / CHORD,
//!   [`score::tiling`] sizes tiles, and [`score::multinode`] is the scalable
//!   multi-node dataflow of §V-B.
//! - [`search_space`]: the §VI-B accounting showing why explicit scratchpad
//!   allocation explodes (~10⁸⁰ choices) while CHORD's policy space is
//!   `O(nodes + edges)` (~10²).
//! - [`accel`]: the Table V accelerator configuration (`CelloConfig`).

pub mod accel;
pub mod chord;
pub mod score;
pub mod search_space;

pub use accel::CelloConfig;
pub use chord::{Chord, ChordConfig, ChordPolicyKind, PriorityBias, RiffPriority};
pub use score::binding::{
    build_schedule, build_schedule_with, Binding, Phase, Schedule, ScheduleConstraints,
    ScheduleOptions,
};
pub use score::classify::{classify, Classification, Dependency};
pub use score::multinode::{dominant_partition_rank, NocModel, Partition, PartitionAxis};
pub use score::overbook::{ChordOverbook, MAX_OVERBOOK_LEVEL};
pub use score::repartition::{PhaseRepartition, PhaseSplit, PhaseSplits, RepartitionError};
pub use score::transfer::TransferTuning;

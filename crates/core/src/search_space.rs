//! Scheduling-search-space accounting (§VI-B "High cost of scratchpad
//! allocation solved by CHORD").
//!
//! The paper quantifies why explicit scratchpad allocation is intractable for
//! DAG-level reuse through four multiplicative cost factors, and why CHORD's
//! hybrid design collapses the space. We reproduce each factor exactly (in
//! log-domain, via a Lanczos `ln Γ`, since the counts overflow anything
//! fixed-width):
//!
//! 1. **slice allocation** — choosing the per-tensor slice sizes subject to
//!    `ΣTᵢ_slice < size`: `C(size+T−1, T−1) ≈ size^(T−1)/(T−1)!`;
//! 2. **arrangement** — ordering tensor blocks: `T!` under contiguity
//!    (vs `size!` without);
//! 3. **slice choice** — which elements make up each slice:
//!    `∏ᵢ (Tᵢ − Tᵢ_slice)` under contiguity (vs binomials without);
//! 4. **time variation** — the allocation changes as the program advances,
//!    raising the static product to the number of re-allocation steps.
//!
//! CHORD's design space, by contrast, is the RIFF policy's inputs:
//! `O(nodes + edges)` of DAG metadata — about 10² for ten CG iterations.

use serde::{Deserialize, Serialize};

/// `ln Γ(x)` via the Lanczos approximation (g = 7, n = 9), accurate to ~1e-13
/// for x > 0 — plenty for log-domain combinatorics.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive x, got {x}");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `log10 C(n, k)`.
pub fn log10_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n);
    let ln = ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0);
    ln / std::f64::consts::LN_10
}

/// `log10 n!`.
pub fn log10_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0) / std::f64::consts::LN_10
}

/// The §VI-B cost report for a buffer of `size` words shared by `tensor_words`
/// tensors (their full sizes), re-allocated over `time_steps` program points.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchSpaceReport {
    /// Buffer capacity in words.
    pub size_words: u64,
    /// Number of contending tensors `T`.
    pub tensors: usize,
    /// log10 of factor (1): slice allocation `C(size+T−1, T−1)`.
    pub log10_slice_allocation: f64,
    /// log10 of factor (2): arrangement `T!` (contiguous blocks).
    pub log10_arrangement: f64,
    /// log10 of factor (3): slice choice `∏(Tᵢ − Tᵢ_slice)` (contiguous).
    pub log10_slice_choice: f64,
    /// log10 of the static product (1)·(2)·(3).
    pub log10_static_total: f64,
    /// log10 after raising to `time_steps` (factor 4).
    pub log10_time_varying: f64,
    /// CHORD's alternative: `nodes + edges` policy inputs.
    pub chord_design_points: u64,
}

/// Computes the report. `tensor_words[i]` is tensor *i*'s full size; the
/// nominal slice assumed for factor (3) is an even split `size/T`.
pub fn scratchpad_search_space(
    size_words: u64,
    tensor_words: &[u64],
    time_steps: u32,
    dag_nodes: usize,
    dag_edges: usize,
) -> SearchSpaceReport {
    let t = tensor_words.len() as u64;
    assert!(t >= 1);
    let log10_slice_allocation = log10_choose(size_words + t - 1, t - 1);
    let log10_arrangement = log10_factorial(t);
    let slice = size_words / t;
    let log10_slice_choice: f64 = tensor_words
        .iter()
        .map(|&ti| (ti.saturating_sub(slice).max(1) as f64).log10())
        .sum();
    let log10_static_total = log10_slice_allocation + log10_arrangement + log10_slice_choice;
    SearchSpaceReport {
        size_words,
        tensors: tensor_words.len(),
        log10_slice_allocation,
        log10_arrangement,
        log10_slice_choice,
        log10_static_total,
        log10_time_varying: log10_static_total * time_steps as f64,
        chord_design_points: (dag_nodes + dag_edges) as u64,
    }
}

/// Op-by-op (baseline) buffer-allocation space: each of `ops` operations
/// independently splits the buffer among its `tensors_per_op` operands —
/// `ops × C(size+T−1, T−1)` total configurations examined. Returns log10.
pub fn op_by_op_search_space(size_words: u64, tensors_per_op: u64, ops: u64) -> f64 {
    (ops as f64).log10() + log10_choose(size_words + tensors_per_op - 1, tensors_per_op - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn choose_small_cases() {
        assert!((log10_choose(5, 2) - 1.0).abs() < 1e-10); // C(5,2)=10
        assert!((log10_choose(10, 0)).abs() < 1e-10); // 1
        assert!((log10_choose(52, 5) - (2_598_960f64).log10()).abs() < 1e-9);
    }

    #[test]
    fn factorial_small_cases() {
        assert!((log10_factorial(5) - 120f64.log10()).abs() < 1e-10);
        assert!((log10_factorial(0)).abs() < 1e-10);
    }

    /// The paper's headline: slice allocation for a 4 MB buffer (32-bit words)
    /// and 5 tensors is ≈ size⁴ ≈ 10²⁴, and the full static product with
    /// CG-sized tensors lands in the 10⁵⁰–10⁸⁰+ regime the paper summarizes
    /// as "approximately 10⁸⁰"; with time variation it blows far past it.
    #[test]
    fn paper_scale_reproduction() {
        let size = (4u64 << 20) / 4; // 1 Mi words
        let tensors = [1_310_720u64; 5]; // five 5.24 MB CG tensors (M=81920, N=16)
        let r = scratchpad_search_space(size, &tensors, 7, 70, 100);
        // size^4/4! ~ 10^22.8
        assert!(r.log10_slice_allocation > 22.0 && r.log10_slice_allocation < 24.5);
        assert!((r.log10_arrangement - 2.079).abs() < 0.01); // 5! = 120
        assert!(r.log10_slice_choice > 25.0); // five ~10^5.7 terms... (10^29)
        assert!(r.log10_static_total > 50.0);
        assert!(r.log10_time_varying > 80.0, "{}", r.log10_time_varying);
        // CHORD: O(nodes+edges) ~ 10^2.
        assert_eq!(r.chord_design_points, 170);
        assert!((r.chord_design_points as f64).log10() < 3.0);
    }

    /// Intro's op-by-op number: ~10^12–10^16 depending on granularity — vastly
    /// below the DAG-level 10^80 but vastly above CHORD's 10^2.
    #[test]
    fn op_by_op_between_chord_and_dag() {
        let size = (4u64 << 20) / 4;
        let per_op = op_by_op_search_space(size, 3, 7);
        assert!(per_op > 10.0 && per_op < 17.0, "{per_op}");
        let tensors = [1_310_720u64; 5];
        let dag = scratchpad_search_space(size, &tensors, 7, 70, 100);
        assert!(per_op < dag.log10_static_total);
    }

    /// The reduction factor CHORD buys: ≥ 10^78 fewer design points.
    #[test]
    fn chord_reduction_factor() {
        let size = (4u64 << 20) / 4;
        let tensors = [1_310_720u64; 5];
        let r = scratchpad_search_space(size, &tensors, 7, 70, 100);
        let chord_log10 = (r.chord_design_points as f64).log10();
        assert!(r.log10_time_varying - chord_log10 > 78.0);
    }

    #[test]
    fn monotone_in_tensor_count() {
        let size = 1u64 << 20;
        let a = scratchpad_search_space(size, &[size; 3], 1, 10, 10);
        let b = scratchpad_search_space(size, &[size; 6], 1, 10, 10);
        assert!(b.log10_static_total > a.log10_static_total);
    }
}

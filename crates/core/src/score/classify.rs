//! Algorithm 2: determination of tensor-level dependencies in a DAG (§V-A).
//!
//! Every edge is classified into one of four dependencies:
//!
//! | dependency | meaning | served by |
//! |---|---|---|
//! | `Sequential` | producer and consumer execute one-by-one | CHORD / DRAM |
//! | `Pipelineable` | consumer can stream tiles as produced | pipeline buffer |
//! | `DelayedHold` | delayed consumer, but the whole path to it pipelines — hold the tiles (Fig 6) | pipeline buffer (extra occupancy) |
//! | `DelayedWriteback` | delayed consumer behind a contraction or rank break — tiles must persist | **CHORD** |
//!
//! plus the node-level `parallel_multicast` flag (several non-transitive
//! consumers of the same tensor).
//!
//! The rules are implemented in the paper's pseudocode order, with later
//! rules overriding earlier ones. Interpretations (documented in DESIGN.md):
//! a consumer is *unshared* w.r.t. a tensor when the consumer's dominant rank
//! is not among the tensor's ranks at that consumer; `pathnext` is the next
//! node along the longest path between the edge's endpoints.

use cello_graph::dag::{EdgeId, NodeId, TensorDag};
use cello_graph::node::{Dominance, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Edge-level dependency classification (§V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dependency {
    /// Producer and consumer execute sequentially; operand written back.
    Sequential,
    /// Producer tiles can stream straight into the consumer.
    Pipelineable,
    /// Delayed consumer on an all-pipelineable path: hold tiles on-chip.
    DelayedHold,
    /// Delayed consumer behind a contraction/rank break: full writeback, the
    /// CHORD-served case.
    DelayedWriteback,
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dependency::Sequential => "sequential",
            Dependency::Pipelineable => "pipelineable",
            Dependency::DelayedHold => "delayed_hold",
            Dependency::DelayedWriteback => "delayed_writeback",
        })
    }
}

/// Output of Algorithm 2 over a DAG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Classification {
    /// Per-edge dependency (indexed by `EdgeId`).
    pub deps: Vec<Dependency>,
    /// Per-edge transitivity flag.
    pub transitive: Vec<bool>,
    /// Per-node count of non-transitive out-edges.
    pub numcast: Vec<u32>,
    /// Per-node parallel-multicast flag (`numcast > 1`).
    pub parallel_multicast: Vec<bool>,
}

impl Classification {
    /// Dependency of an edge.
    pub fn dep(&self, e: EdgeId) -> Dependency {
        self.deps[e.0]
    }

    /// Whether a node multicasts its output to parallel consumers.
    pub fn is_multicast(&self, n: NodeId) -> bool {
        self.parallel_multicast[n.0]
    }

    /// Count of edges per dependency kind (reporting).
    pub fn histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for d in &self.deps {
            match d {
                Dependency::Sequential => h[0] += 1,
                Dependency::Pipelineable => h[1] += 1,
                Dependency::DelayedHold => h[2] += 1,
                Dependency::DelayedWriteback => h[3] += 1,
            }
        }
        h
    }
}

/// Is `consumer` *shared* with the tensor flowing along `src → consumer`?
/// True when the consumer's dominant rank is one of the tensor's ranks at
/// that consumer. When no direct edge exists (defensive), assume shared.
fn consumer_shares(dag: &TensorDag, src: NodeId, consumer: NodeId) -> bool {
    let dominant = dag.node(consumer).spec.dominant().rank;
    dag.edges()
        .filter(|(_, e)| e.src == src.0 && e.dst == consumer.0)
        .map(|(_, e)| e.shares_rank(dominant))
        .next()
        .unwrap_or(true)
}

/// Algorithm 2 (verbatim rule order; see module docs for interpretations).
///
/// ```
/// use cello_core::score::classify::{classify, Dependency};
/// use cello_workloads::cg::{build_cg_dag, CgParams};
/// use cello_workloads::datasets::SHALLOW_WATER1;
///
/// let dag = build_cg_dag(&CgParams::from_dataset(&SHALLOW_WATER1, 16, 1));
/// let cls = classify(&dag);
/// // Edge 4 is S → op 4 — the paper's flagship delayed writeback (Fig 7).
/// assert_eq!(cls.deps[4], Dependency::DelayedWriteback);
/// // Edge 0 is S → op 2a — pipelineable into the contraction.
/// assert_eq!(cls.deps[0], Dependency::Pipelineable);
/// ```
pub fn classify(dag: &TensorDag) -> Classification {
    let ne = dag.edge_count();
    let nn = dag.node_count();
    let mut deps = vec![Dependency::Sequential; ne];
    let mut transitive = vec![false; ne];
    let mut numcast = vec![0u32; nn];
    let mut parallel_multicast = vec![false; nn];

    for (nid, node) in dag.nodes() {
        for eid in dag.out_edges(nid) {
            let edge = dag.edge(eid);
            let is_trans = dag.edge_is_transitive(eid);
            transitive[eid.0] = is_trans;
            if !is_trans {
                numcast[nid.0] += 1;
                if numcast[nid.0] > 1 {
                    parallel_multicast[nid.0] = true;
                }
            }

            let src_contracted = node.dominance == Dominance::Contracted;
            let pathnext = dag.pathnext(eid);
            let pathnext_shared = consumer_shares(dag, nid, pathnext);

            // Rule 1: direct edge from a non-contracted producer to a shared
            // consumer pipelines.
            let mut dep = if !src_contracted && !is_trans && pathnext_shared {
                Dependency::Pipelineable
            } else {
                Dependency::Sequential
            };

            // Rule 2: contraction-heavy producers and non-MAC ops never
            // pipeline (Challenge 2).
            if src_contracted || node.kind != OpKind::TensorMac {
                dep = Dependency::Sequential;
            }

            // Rule 3: a consumer whose dominant rank is not a rank of this
            // tensor cannot stream it in production order.
            let dst_dominant = dag.node(NodeId(edge.dst)).spec.dominant().rank;
            if !edge.shares_rank(dst_dominant) {
                dep = Dependency::Sequential;
            }

            // Rule 4: transitive edges from non-contracted producers — walk
            // the longest path; any contraction-dominant interior node or
            // rank break forces a writeback, otherwise the tiles can be held.
            if !src_contracted && is_trans && pathnext_shared {
                let path = dag
                    .longest_path(nid, NodeId(edge.dst))
                    .expect("transitive edge implies a path");
                let mut writeback = false;
                // Interior nodes: path[1..len-1].
                for w in 1..path.len() - 1 {
                    let pathnode = path[w];
                    let next_on_path = path[w + 1];
                    let next_shared = consumer_shares(dag, pathnode, next_on_path);
                    if dag.node(pathnode).dominance == Dominance::Contracted || !next_shared {
                        writeback = true;
                        break;
                    }
                }
                dep = if writeback {
                    Dependency::DelayedWriteback
                } else {
                    Dependency::DelayedHold
                };
            }

            deps[eid.0] = dep;
        }
    }

    Classification {
        deps,
        transitive,
        numcast,
        parallel_multicast,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_graph::edge::TensorMeta;
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::{RankExtent, RankId};

    const M: u64 = 81_920;
    const N: u64 = 16;

    fn skewed_u(out_rank: &str) -> EinsumSpec {
        // M x J x N GEMM, uncontracted-dominant (CG lines 3/4/7).
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new(out_rank), RankId::new("j")],
                vec![RankId::new("j"), RankId::new("n")],
            ],
            vec![RankId::new(out_rank), RankId::new("n")],
            &[
                RankExtent::dense(out_rank, M),
                RankExtent::dense("j", N),
                RankExtent::dense("n", N),
            ],
        )
    }

    fn skewed_c() -> EinsumSpec {
        // K(N')N contraction-dominant (CG lines 2a/5).
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new("k"), RankId::new("p")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("p"), RankId::new("n")],
            &[
                RankExtent::dense("k", M),
                RankExtent::dense("p", N),
                RankExtent::dense("n", N),
            ],
        )
    }

    fn balanced() -> EinsumSpec {
        EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 784),
                RankExtent::dense("k", 512),
                RankExtent::dense("n", 128),
            ],
        )
    }

    fn meta(name: &str) -> TensorMeta {
        TensorMeta::dense(name, &["m", "n"], M * N)
    }

    /// Straight pipelineable chain: U -> U with shared dominant rank.
    #[test]
    fn chain_of_u_nodes_pipelines() {
        let mut dag = TensorDag::new();
        let a = dag.add_op("a", skewed_u("m"), OpKind::TensorMac, meta("T0"));
        let b = dag.add_op("b", skewed_u("m"), OpKind::TensorMac, meta("T1"));
        dag.add_edge(a, b, &["m", "j"]);
        let cls = classify(&dag);
        assert_eq!(cls.deps[0], Dependency::Pipelineable);
    }

    /// Rule 2: contraction-dominant producers never pipeline (Challenge 2).
    #[test]
    fn contracted_producer_is_sequential() {
        let mut dag = TensorDag::new();
        let a = dag.add_op(
            "2a",
            skewed_c(),
            OpKind::TensorMac,
            TensorMeta::dense("D", &["p", "n"], N * N),
        );
        let b = dag.add_op("2b", skewed_u("m"), OpKind::TensorMac, meta("T1"));
        dag.add_edge(a, b, &["m", "j"]);
        let cls = classify(&dag);
        assert_eq!(cls.deps[0], Dependency::Sequential);
    }

    /// Rule 2: non-MAC producers (small inverses) never pipeline.
    #[test]
    fn inverse_producer_is_sequential() {
        let mut dag = TensorDag::new();
        let small = EinsumSpec::parse(
            "pn->pn",
            &[RankExtent::dense("p", N), RankExtent::dense("n", N)],
        );
        let a = dag.add_op(
            "inv",
            small,
            OpKind::Inverse,
            TensorMeta::dense("L", &["p", "n"], N * N),
        );
        let b = dag.add_op("b", skewed_u("m"), OpKind::TensorMac, meta("T1"));
        dag.add_edge(a, b, &["j", "n"]);
        let cls = classify(&dag);
        assert_eq!(cls.deps[0], Dependency::Sequential);
    }

    /// Rule 3: consumer whose dominant rank is not a tensor rank (CG's P into
    /// the SpMM: P[k,n] but the SpMM is m-dominant).
    #[test]
    fn unshared_consumer_is_sequential() {
        let mut dag = TensorDag::new();
        let a = dag.add_op("7", skewed_u("m"), OpKind::TensorMac, meta("P"));
        // SpMM consumer: dominant rank m, consumes P as (k, n).
        let spmm = EinsumSpec::from_parts(
            vec![
                vec![RankId::new("m"), RankId::new("k")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("m"), RankId::new("n")],
            &[
                RankExtent::dense("m", M),
                RankExtent::compressed("k", M, 4),
                RankExtent::dense("n", N),
            ],
        );
        let b = dag.add_op("1'", spmm, OpKind::TensorMac, meta("S"));
        dag.add_edge(a, b, &["k", "n"]); // P seen as (k,n): m not shared
        let cls = classify(&dag);
        assert_eq!(cls.deps[0], Dependency::Sequential);
    }

    /// Rule 4 with a contraction on the path: delayed **writeback** —
    /// the CG `S -> 4` edge (path 1 -> 2a -> … -> 4 passes the contracted 2a).
    #[test]
    fn transitive_edge_behind_contraction_is_writeback() {
        let mut dag = TensorDag::new();
        let n1 = dag.add_op("1", skewed_u("m"), OpKind::TensorMac, meta("S"));
        let n2 = dag.add_op(
            "2a",
            skewed_c(),
            OpKind::TensorMac,
            TensorMeta::dense("D", &["p", "n"], N * N),
        );
        let n4 = dag.add_op("4", skewed_u("m"), OpKind::TensorMac, meta("R"));
        dag.add_edge(n1, n2, &["k", "n"]); // S into the contraction (shared k)
        dag.add_edge(n2, n4, &["j", "n"]); // Δ onward (sequential anyway)
        dag.add_edge(n1, n4, &["m", "j"]); // S delayed: transitive via 2a
        let cls = classify(&dag);
        assert_eq!(cls.deps[0], Dependency::Pipelineable, "S -> 2a pipelines");
        assert_eq!(
            cls.deps[1],
            Dependency::Sequential,
            "Δ leaves a contraction"
        );
        assert_eq!(
            cls.deps[2],
            Dependency::DelayedWriteback,
            "S -> 4 writes back"
        );
    }

    /// Rule 4 with an all-pipelineable path: delayed **hold** — the ResNet
    /// skip connection (Fig 7 right).
    #[test]
    fn resnet_skip_is_delayed_hold() {
        let mut dag = TensorDag::new();
        let inp = dag.add_op(
            "conv0",
            balanced(),
            OpKind::TensorMac,
            TensorMeta::dense("T0", &["m", "n"], 784 * 128),
        );
        let c1 = dag.add_op(
            "conv1",
            balanced(),
            OpKind::TensorMac,
            TensorMeta::dense("T1", &["m", "n"], 784 * 128),
        );
        let c2 = dag.add_op(
            "conv2",
            balanced(),
            OpKind::TensorMac,
            TensorMeta::dense("T2", &["m", "n"], 784 * 128),
        );
        let add = dag.add_op(
            "add",
            balanced(),
            OpKind::TensorMac,
            TensorMeta::dense("T3", &["m", "n"], 784 * 128),
        );
        dag.add_edge(inp, c1, &["m", "k"]);
        dag.add_edge(c1, c2, &["m", "k"]);
        dag.add_edge(c2, add, &["m", "k"]);
        dag.add_edge(inp, add, &["m", "k"]); // skip: transitive via c1, c2
        let cls = classify(&dag);
        assert_eq!(cls.deps[3], Dependency::DelayedHold);
        assert_eq!(cls.deps[0], Dependency::Pipelineable);
    }

    /// Parallel multicast: two non-transitive consumers set the flag (Λ into
    /// CG ops 3 and 4).
    #[test]
    fn multicast_flag() {
        let mut dag = TensorDag::new();
        let p = dag.add_op("2b", skewed_u("m"), OpKind::TensorMac, meta("L"));
        let a = dag.add_op("3", skewed_u("m"), OpKind::TensorMac, meta("X"));
        let b = dag.add_op("4", skewed_u("m"), OpKind::TensorMac, meta("R"));
        dag.add_edge(p, a, &["m", "j"]);
        dag.add_edge(p, b, &["m", "j"]);
        let cls = classify(&dag);
        assert!(cls.is_multicast(p));
        assert!(!cls.is_multicast(a));
        assert_eq!(cls.numcast[p.0], 2);
    }

    /// Transitive edges do not count toward numcast.
    #[test]
    fn transitive_edges_do_not_multicast() {
        let mut dag = TensorDag::new();
        let a = dag.add_op("a", skewed_u("m"), OpKind::TensorMac, meta("T0"));
        let b = dag.add_op("b", skewed_u("m"), OpKind::TensorMac, meta("T1"));
        let c = dag.add_op("c", skewed_u("m"), OpKind::TensorMac, meta("T2"));
        dag.add_edge(a, b, &["m", "j"]);
        dag.add_edge(b, c, &["m", "j"]);
        dag.add_edge(a, c, &["m", "j"]); // transitive
        let cls = classify(&dag);
        assert!(!cls.is_multicast(a));
        assert_eq!(cls.numcast[a.0], 1);
        assert_eq!(cls.deps[2], Dependency::DelayedHold); // all-U path
    }

    /// Histogram sums to edge count; every edge gets exactly one class.
    #[test]
    fn histogram_partitions_edges() {
        let mut dag = TensorDag::new();
        let a = dag.add_op("a", skewed_u("m"), OpKind::TensorMac, meta("T0"));
        let b = dag.add_op("b", skewed_c(), OpKind::TensorMac, meta("T1"));
        let c = dag.add_op("c", skewed_u("m"), OpKind::TensorMac, meta("T2"));
        dag.add_edge(a, b, &["k", "n"]);
        dag.add_edge(b, c, &["m", "j"]);
        dag.add_edge(a, c, &["m", "j"]);
        let cls = classify(&dag);
        assert_eq!(cls.histogram().iter().sum::<usize>(), dag.edge_count());
    }
}

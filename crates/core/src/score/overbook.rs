//! CHORD overbooking — granting capacity at *expected* occupancy.
//!
//! The worst-case model sizes every CHORD-bound sparse operand at its dense
//! (full-payload) footprint, so a matrix whose rows are mostly empty still
//! claims the whole tile. *Tailors* (Xue et al., PAPERS.md) shows the win of
//! **overbooking**: grant buffer capacity for the tile occupancy you *expect*
//! and accept a modeled spill/refetch penalty for the tiles that overflow.
//! [`ChordOverbook`] is that decision as a schedule knob:
//!
//! - **Grant**: a tensor with measured occupancy statistics (its
//!   [`OccupancyStats`], derived from the real `.mtx` nonzero structure) is
//!   granted `rel + (1 − rel) / 2^level` of its dense words, where `rel` is
//!   the mean block occupancy relative to the fullest block. Level 0 is off
//!   (grant = dense footprint, the pre-occupancy model bit for bit); each
//!   extra level halves the slack kept above the expected occupancy.
//! - **Spill**: tiles whose actual nnz overflows the grant must round-trip
//!   to DRAM. The expected overflow mass scales with how *uneven* the
//!   blocks are: `rel_std · (1 − 1/2^level)` of the dense words. A uniform
//!   matrix (variance 0) never spills no matter how aggressive the
//!   overbooking; a skewed one pays more the harder it overbooks.
//!
//! A dense tensor (`rel = 1`, `rel_std = 0`) is granted its full footprint
//! and spills nothing at every level, so overbooking is exactly the
//! identity on dense workloads — the invariant the regression baselines and
//! the sim↔surrogate exactness contract rely on.

use cello_tensor::sparse::OccupancyStats;
use serde::{Deserialize, Serialize};

/// Highest meaningful overbook level: beyond this the grant is within 2% of
/// the expected occupancy and deeper levels change nothing worth searching.
pub const MAX_OVERBOOK_LEVEL: u8 = 6;

/// Per-schedule CHORD overbooking decision (see the module docs).
///
/// The default (`level 0`) is the worst-case-dense model: every operand is
/// granted its full footprint and no spill is charged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChordOverbook {
    /// Overbooking aggressiveness. 0 = off; each extra level halves the
    /// capacity slack granted above a tensor's expected occupancy.
    pub level: u8,
}

impl ChordOverbook {
    /// The worst-case-dense model: full grants, no spill.
    pub fn off() -> Self {
        Self::default()
    }

    /// Overbook at `level` (clamped to [`MAX_OVERBOOK_LEVEL`]).
    pub fn at(level: u8) -> Self {
        Self { level }.normalized()
    }

    /// True when this knob changes nothing (level 0).
    pub fn is_off(&self) -> bool {
        self.level == 0
    }

    /// Canonical form: levels beyond [`MAX_OVERBOOK_LEVEL`] grant and spill
    /// indistinguishably from it, so they clamp — keeping schedule keys and
    /// wire codecs collapse-stable.
    pub fn normalized(self) -> Self {
        Self {
            level: self.level.min(MAX_OVERBOOK_LEVEL),
        }
    }

    /// Fraction of the slack above expected occupancy this level keeps.
    fn slack(&self) -> f64 {
        1.0 / (1u64 << self.level.min(MAX_OVERBOOK_LEVEL)) as f64
    }

    /// Fraction of a tensor's dense words the grant covers.
    pub fn grant_frac(&self, occ: &OccupancyStats) -> f64 {
        let rel = occ.rel_mean();
        (rel + (1.0 - rel) * self.slack()).clamp(0.0, 1.0)
    }

    /// Fraction of a tensor's dense words expected to overflow the grant
    /// and round-trip to DRAM.
    pub fn spill_frac(&self, occ: &OccupancyStats) -> f64 {
        (occ.rel_std() * (1.0 - self.slack())).clamp(0.0, 1.0)
    }

    /// Words of capacity granted to a tensor of `words` dense footprint.
    /// Never exceeds `words`; the full footprint when off.
    pub fn granted_words(&self, words: u64, occ: &OccupancyStats) -> u64 {
        if self.is_off() {
            return words;
        }
        ((words as f64 * self.grant_frac(occ)).ceil() as u64).min(words)
    }

    /// Words expected to spill (re-fetch from DRAM) under this grant.
    /// Zero when off and zero for uniform (variance-free) occupancy.
    pub fn spill_words(&self, words: u64, occ: &OccupancyStats) -> u64 {
        if self.is_off() {
            return 0;
        }
        ((words as f64 * self.spill_frac(occ)).ceil() as u64).min(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(rel_mean: f64, rel_std: f64) -> OccupancyStats {
        // Synthesize stats with the requested relative moments (max = 1).
        let mut o = OccupancyStats::dense();
        o.mean = rel_mean;
        o.variance = rel_std * rel_std;
        o
    }

    #[test]
    fn off_is_the_identity() {
        let ob = ChordOverbook::off();
        assert!(ob.is_off());
        let occ = skewed(0.25, 0.4);
        assert_eq!(ob.granted_words(1000, &occ), 1000);
        assert_eq!(ob.spill_words(1000, &occ), 0);
    }

    #[test]
    fn dense_occupancy_is_untouched_at_every_level() {
        let dense = OccupancyStats::dense();
        for level in 0..=MAX_OVERBOOK_LEVEL {
            let ob = ChordOverbook::at(level);
            assert_eq!(ob.granted_words(4096, &dense), 4096, "level {level}");
            assert_eq!(ob.spill_words(4096, &dense), 0, "level {level}");
        }
    }

    #[test]
    fn deeper_levels_grant_less_and_spill_more() {
        let occ = skewed(0.25, 0.3);
        let grants: Vec<u64> = (0..=MAX_OVERBOOK_LEVEL)
            .map(|l| ChordOverbook::at(l).granted_words(100_000, &occ))
            .collect();
        let spills: Vec<u64> = (0..=MAX_OVERBOOK_LEVEL)
            .map(|l| ChordOverbook::at(l).spill_words(100_000, &occ))
            .collect();
        assert!(grants.windows(2).all(|w| w[1] <= w[0]), "{grants:?}");
        assert!(spills.windows(2).all(|w| w[1] >= w[0]), "{spills:?}");
        // Level 1 grants half the slack above the 25% expectation.
        assert_eq!(grants[1], 62_500);
        // Uniform occupancy never spills.
        let uniform = skewed(0.25, 0.0);
        assert_eq!(ChordOverbook::at(4).spill_words(100_000, &uniform), 0);
    }

    #[test]
    fn normalization_clamps_and_collapses() {
        assert_eq!(ChordOverbook::at(200).level, MAX_OVERBOOK_LEVEL);
        assert_eq!(
            ChordOverbook { level: 255 }.normalized(),
            ChordOverbook::at(MAX_OVERBOOK_LEVEL)
        );
        assert_eq!(ChordOverbook::at(0), ChordOverbook::off());
    }
}

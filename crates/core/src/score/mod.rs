//! SCORE — Scheduler for Complex Inter-Operation Reuse (§V).
//!
//! SCORE takes the application as a [`cello_graph::TensorDag`] and produces a
//! [`binding::Schedule`]: which ops run concurrently as pipeline clusters
//! (Fig 8), which edges are *realized* as on-chip pipelining, and which buffer
//! each tensor is steered to (register file / pipeline buffer / CHORD / DRAM).
//!
//! - [`classify`]: Algorithm 2 — tensor-level dependency taxonomy;
//! - [`loop_order`]: per-op loop orders and the producer/consumer
//!   co-dependence conditions for pipelining (§V-B);
//! - [`tiling`]: tile sizing for the pipeline buffer, RF residency of small
//!   tensors, occupancy-based sparse tiling;
//! - [`binding`]: cluster formation and tensor→buffer steering (§V-C);
//! - [`multinode`]: the scalable multi-node dataflow (§V-B "Scalable
//!   Dataflow") — the mesh NoC model plus the [`multinode::Partition`]
//!   schedule decision (node count × rank-slice/stage-split axis) that
//!   `binding::build_schedule_with` validates and the simulator scores;
//! - [`repartition`]: the per-phase SRAM split
//!   ([`repartition::PhaseRepartition`]) — pipeline-buffer/RF reservations
//!   as a *per-cluster* decision, with CHORD resized at phase boundaries;
//! - [`transfer`]: DRAM transfer ordering ([`transfer::TransferTuning`]) —
//!   prefetch depth and double-buffering as a schedule decision, trading a
//!   staging carve out of CHORD for compute/transfer overlap;
//! - [`overbook`]: Tailors-style CHORD overbooking
//!   ([`overbook::ChordOverbook`]) — granting capacity at a sparse
//!   operand's *expected* occupancy with a modeled spill penalty, instead
//!   of its worst-case dense footprint.

pub mod binding;
pub mod classify;
pub mod loop_order;
pub mod multinode;
pub mod overbook;
pub mod repartition;
pub mod swizzle;
pub mod tiling;
pub mod transfer;

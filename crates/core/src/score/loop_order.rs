//! Loop orders and the pipelining co-dependence conditions (§V-B).
//!
//! SCORE fixes each op's loop order mechanically: the **dominant rank goes
//! outermost**, so the large tensor is stationary and the small tensor streams
//! from the register file — this alone achieves the best-case intra-operation
//! reuse for skewed GEMMs (§V-B "Tiling"). For a producer/consumer pair to
//! actually pipeline, the paper's four conditions must hold:
//!
//! 1. the edge has a pipelineable inter-operation pattern (Algorithm 2);
//! 2. the source's outermost loop is an *uncontracted* rank;
//! 3. the destination's outermost loop is a rank *shared* with the tensor;
//! 4. the shared tensor is not swizzled between producer and consumer.

use crate::score::classify::{Classification, Dependency};
use cello_graph::dag::{EdgeId, NodeId, TensorDag};
use cello_tensor::einsum::RankKind;
use cello_tensor::shape::RankId;
use serde::{Deserialize, Serialize};

/// A concrete loop order for one op: ranks from outermost to innermost.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopOrder {
    /// Ranks, outermost first.
    pub order: Vec<RankId>,
}

impl LoopOrder {
    /// The outermost rank.
    pub fn outermost(&self) -> RankId {
        self.order[0]
    }
}

/// SCORE's loop-order rule: dominant (largest effective) rank outermost,
/// remaining ranks by descending effective extent.
///
/// For *balanced* nodes (no rank dominates — the DNN regime) the tie is
/// resolved in favor of the largest **uncontracted** rank, because condition 2
/// requires an uncontracted outermost for the node to act as a pipeline
/// producer, and a balanced node loses nothing by choosing it ("the schedule
/// tries to satisfy the codependence conditions", §V-B).
pub fn choose_loop_order(dag: &TensorDag, node: NodeId) -> LoopOrder {
    let n = dag.node(node);
    let spec = &n.spec;
    let mut ranks = spec.extents();
    ranks.sort_by(|a, b| b.effective.cmp(&a.effective).then(a.rank.cmp(&b.rank)));
    if n.dominance == cello_graph::node::Dominance::Balanced {
        if let Some(pos) = ranks
            .iter()
            .position(|r| spec.rank_kind(r.rank) == RankKind::Uncontracted)
        {
            let chosen = ranks.remove(pos);
            ranks.insert(0, chosen);
        }
    }
    LoopOrder {
        order: ranks.into_iter().map(|r| r.rank).collect(),
    }
}

/// Checks the four §V-B pipelining conditions for an edge, given the chosen
/// loop orders of its endpoints.
pub fn can_pipeline(
    dag: &TensorDag,
    cls: &Classification,
    eid: EdgeId,
    src_order: &LoopOrder,
    dst_order: &LoopOrder,
) -> bool {
    let edge = dag.edge(eid);
    // Condition 1: pipelineable pattern (delayed-hold also streams tiles).
    if !matches!(
        cls.dep(eid),
        Dependency::Pipelineable | Dependency::DelayedHold
    ) {
        return false;
    }
    // Condition 2: source outermost rank is uncontracted in the source.
    let src_spec = &dag.node(NodeId(edge.src)).spec;
    if src_spec.rank_kind(src_order.outermost()) != RankKind::Uncontracted {
        return false;
    }
    // Condition 3: destination outermost rank is shared with the tensor.
    if !edge.shares_rank(dst_order.outermost()) {
        return false;
    }
    // Condition 4: no swizzle — the consumer accepts the produced layout.
    let produced_layout = dag.node(NodeId(edge.src)).output.layout;
    if edge.dst_layout != produced_layout {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::classify::classify;
    use cello_graph::edge::{Edge, TensorMeta};
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::layout::Layout;
    use cello_tensor::shape::RankExtent;

    const M: u64 = 81_920;
    const N: u64 = 16;

    fn u_spec(big: &str) -> EinsumSpec {
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new(big), RankId::new("j")],
                vec![RankId::new("j"), RankId::new("n")],
            ],
            vec![RankId::new(big), RankId::new("n")],
            &[
                RankExtent::dense(big, M),
                RankExtent::dense("j", N),
                RankExtent::dense("n", N),
            ],
        )
    }

    fn c_spec() -> EinsumSpec {
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new("k"), RankId::new("p")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("p"), RankId::new("n")],
            &[
                RankExtent::dense("k", M),
                RankExtent::dense("p", N),
                RankExtent::dense("n", N),
            ],
        )
    }

    #[test]
    fn dominant_rank_goes_outermost() {
        let mut dag = TensorDag::new();
        let n = dag.add_op(
            "u",
            u_spec("m"),
            OpKind::TensorMac,
            TensorMeta::dense("T", &["m", "n"], M * N),
        );
        let order = choose_loop_order(&dag, n);
        assert_eq!(order.outermost(), RankId::new("m"));
        assert_eq!(order.order.len(), 3);
    }

    #[test]
    fn contracted_dominant_order() {
        let mut dag = TensorDag::new();
        let n = dag.add_op(
            "c",
            c_spec(),
            OpKind::TensorMac,
            TensorMeta::dense("D", &["p", "n"], N * N),
        );
        assert_eq!(choose_loop_order(&dag, n).outermost(), RankId::new("k"));
    }

    /// CG 1 -> 2a: producer m-outermost (uncontracted), consumer k-outermost
    /// where k is the tensor's rank — all four conditions hold.
    #[test]
    fn cg_s_into_contraction_pipelines() {
        let mut dag = TensorDag::new();
        let p = dag.add_op(
            "1",
            u_spec("m"),
            OpKind::TensorMac,
            TensorMeta::dense("S", &["m", "n"], M * N),
        );
        let c = dag.add_op(
            "2a",
            c_spec(),
            OpKind::TensorMac,
            TensorMeta::dense("D", &["p", "n"], N * N),
        );
        let e = dag.add_edge(p, c, &["k", "n"]);
        let cls = classify(&dag);
        let so = choose_loop_order(&dag, p);
        let co = choose_loop_order(&dag, c);
        assert!(can_pipeline(&dag, &cls, e, &so, &co));
    }

    /// Swizzled consumer breaks condition 4.
    #[test]
    fn swizzle_blocks_pipelining() {
        let mut dag = TensorDag::new();
        let p = dag.add_op(
            "1",
            u_spec("m"),
            OpKind::TensorMac,
            TensorMeta::dense("S", &["m", "n"], M * N),
        );
        let c = dag.add_op(
            "2a",
            c_spec(),
            OpKind::TensorMac,
            TensorMeta::dense("D", &["p", "n"], N * N),
        );
        let e = dag.add_edge_full(Edge::new(p.0, c.0, &["k", "n"]).with_layout(Layout::ColMajor));
        let cls = classify(&dag);
        let so = choose_loop_order(&dag, p);
        let co = choose_loop_order(&dag, c);
        assert!(!can_pipeline(&dag, &cls, e, &so, &co));
    }

    /// Sequential edges never pipeline regardless of loop orders.
    #[test]
    fn sequential_edge_never_pipelines() {
        let mut dag = TensorDag::new();
        let p = dag.add_op(
            "2a",
            c_spec(),
            OpKind::TensorMac,
            TensorMeta::dense("D", &["p", "n"], N * N),
        );
        let c = dag.add_op(
            "3",
            u_spec("m"),
            OpKind::TensorMac,
            TensorMeta::dense("X", &["m", "n"], M * N),
        );
        let e = dag.add_edge(p, c, &["j", "n"]);
        let cls = classify(&dag);
        let so = choose_loop_order(&dag, p);
        let co = choose_loop_order(&dag, c);
        assert!(!can_pipeline(&dag, &cls, e, &so, &co));
    }

    /// Consumer whose outermost rank is not a tensor rank breaks condition 3.
    #[test]
    fn unshared_outermost_blocks_pipelining() {
        let mut dag = TensorDag::new();
        let p = dag.add_op(
            "u1",
            u_spec("m"),
            OpKind::TensorMac,
            TensorMeta::dense("T", &["m", "n"], M * N),
        );
        // Consumer dominated by an unrelated huge rank q.
        let spec = EinsumSpec::from_parts(
            vec![
                vec![RankId::new("q"), RankId::new("j")],
                vec![RankId::new("j"), RankId::new("n")],
            ],
            vec![RankId::new("q"), RankId::new("n")],
            &[
                RankExtent::dense("q", M),
                RankExtent::dense("j", N),
                RankExtent::dense("n", N),
            ],
        );
        let c = dag.add_op(
            "u2",
            spec,
            OpKind::TensorMac,
            TensorMeta::dense("W", &["q", "n"], M * N),
        );
        let e = dag.add_edge(p, c, &["j", "n"]); // tensor ranks {j, n}; q unshared
        let cls = classify(&dag);
        let so = choose_loop_order(&dag, p);
        let co = choose_loop_order(&dag, c);
        assert!(!can_pipeline(&dag, &cls, e, &so, &co));
    }
}

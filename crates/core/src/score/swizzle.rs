//! Swizzle (layout-transformation) minimization (§V-B, Challenge 4).
//!
//! When an operand has several consumers, SCORE chooses the *production
//! layout* that the most consumers can stream directly, so the tensor is laid
//! out once and reused as-is ("the schedule tries to minimize layout
//! transformation (swizzle) of a tensor, among various consumers"). Each
//! avoided swizzle saves a full tensor-sized on-chip pass — and possibly a
//! DRAM round trip when the buffer cannot hold both layouts.
//!
//! On CG the outcome is the paper's implicit claim: with the dominant rank
//! outermost everywhere, *zero* swizzles are needed (every consumer streams
//! the produced row-major layout) — asserted by tests here and in
//! `cello-workloads`.

use cello_graph::dag::TensorDag;
use cello_tensor::layout::{best_layout, count_swizzles, Layout};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of layout selection over a DAG.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SwizzleReport {
    /// Chosen production layout per tensor.
    pub chosen: BTreeMap<String, Layout>,
    /// Swizzle passes incurred if every producer used its natural layout.
    pub swizzles_natural: u64,
    /// Swizzle passes incurred with the chosen layouts.
    pub swizzles_chosen: u64,
    /// Words of tensor data whose transformation passes were avoided.
    pub words_saved: u64,
}

impl SwizzleReport {
    /// Swizzle passes eliminated by the optimization.
    pub fn passes_saved(&self) -> u64 {
        self.swizzles_natural - self.swizzles_chosen
    }
}

/// Chooses per-tensor production layouts minimizing consumer-side swizzles.
pub fn minimize_swizzles(dag: &TensorDag) -> SwizzleReport {
    let mut report = SwizzleReport::default();
    for (nid, node) in dag.nodes() {
        let wanted: Vec<Layout> = dag
            .out_edges(nid)
            .into_iter()
            .map(|e| dag.edge(e).dst_layout)
            .collect();
        let natural = node.output.layout;
        let chosen = best_layout(natural, &wanted);
        let nat_cost = count_swizzles(natural, &wanted);
        let chosen_cost = count_swizzles(chosen, &wanted);
        report.swizzles_natural += nat_cost;
        report.swizzles_chosen += chosen_cost;
        report.words_saved += (nat_cost - chosen_cost) * node.output.words;
        report.chosen.insert(node.output.name.clone(), chosen);
    }
    // Externals can also be staged in either layout (they are loaded once).
    for ext in dag.externals() {
        // Consumers' layouts are recorded per external consumer edge only at
        // the default (producer-natural) granularity; externals keep their
        // stored layout — transforming DRAM-resident inputs is out of scope.
        report
            .chosen
            .entry(ext.meta.name.clone())
            .or_insert(ext.meta.layout);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_graph::edge::{Edge, TensorMeta};
    use cello_graph::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn spec() -> EinsumSpec {
        EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 1000),
                RankExtent::dense("k", 8),
                RankExtent::dense("n", 8),
            ],
        )
    }

    fn dag_with_layouts(consumer_layouts: &[Layout]) -> TensorDag {
        let mut dag = TensorDag::new();
        let p = dag.add_op(
            "p",
            spec(),
            OpKind::TensorMac,
            TensorMeta::dense("T", &["m", "n"], 8000),
        );
        for (i, &l) in consumer_layouts.iter().enumerate() {
            let c = dag.add_op(
                format!("c{i}"),
                spec(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("Z{i}"), &["m", "n"], 8000),
            );
            dag.add_edge_full(Edge::new(p.0, c.0, &["m", "k"]).with_layout(l));
        }
        dag
    }

    #[test]
    fn no_consumers_no_swizzles() {
        let report = minimize_swizzles(&dag_with_layouts(&[]));
        assert_eq!(report.swizzles_chosen, 0);
        assert_eq!(report.passes_saved(), 0);
    }

    #[test]
    fn majority_layout_wins() {
        use Layout::*;
        // Natural RowMajor, but two of three consumers want ColMajor:
        // producing ColMajor saves one pass (2 -> 1 swizzles).
        let report = minimize_swizzles(&dag_with_layouts(&[ColMajor, ColMajor, RowMajor]));
        assert_eq!(report.chosen["T"], ColMajor);
        assert_eq!(report.swizzles_natural, 2);
        assert_eq!(report.swizzles_chosen, 1);
        assert_eq!(report.words_saved, 8000);
    }

    #[test]
    fn unanimous_consumers_swizzle_free() {
        use Layout::*;
        let report = minimize_swizzles(&dag_with_layouts(&[ColMajor, ColMajor]));
        assert_eq!(report.swizzles_chosen, 0);
        assert_eq!(report.passes_saved(), 2);
    }

    #[test]
    fn ties_keep_natural_layout() {
        use Layout::*;
        let report = minimize_swizzles(&dag_with_layouts(&[ColMajor, RowMajor]));
        assert_eq!(report.chosen["T"], RowMajor);
        assert_eq!(report.swizzles_chosen, 1);
    }

    /// The paper-level claim: CG as built by `cello-workloads` needs zero
    /// swizzles — every consumer streams the produced layout.
    #[test]
    fn cg_is_swizzle_free() {
        // Local mini-CG (mirrors the workloads builder's layout discipline).
        let dag = dag_with_layouts(&[Layout::RowMajor, Layout::RowMajor]);
        let report = minimize_swizzles(&dag);
        assert_eq!(report.swizzles_chosen, 0);
        assert_eq!(report.swizzles_natural, 0);
    }
}

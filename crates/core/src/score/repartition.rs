//! Per-phase SRAM repartition (§V/§VI co-design at phase granularity).
//!
//! The paper's premise is that schedule and buffer split are *one* decision,
//! but a single global `(pipeline buffer, RF)` split forces every pipeline
//! cluster in the DAG onto the same compromise: a fused, pipeline-heavy
//! cluster wants a fat streaming buffer, while a solo CHORD-heavy cluster
//! would rather donate that SRAM to CHORD capacity. A [`PhaseRepartition`]
//! makes the split phase-granular: each pipeline cluster carries its own
//! [`PhaseSplit`], CHORD's data array is resized at phase boundaries (the
//! simulator charges the resize's dirty-eviction traffic), and the uniform
//! repartition degenerates bit-exactly to today's global split.
//!
//! Construction is *validated*: a split that reserves more than the SRAM it
//! was declared against (`pipeline + rf > sram_words`) is a typed
//! [`RepartitionError`], not a silent clamp — the simulator's one-cache-line
//! floor remains only as a backstop for hand-built schedules.

use crate::score::binding::ScheduleOptions;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One phase's share of the on-chip SRAM: what the pipeline buffer and the
/// register file reserve; CHORD gets the remainder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSplit {
    /// Pipeline-buffer capacity in words during this phase.
    pub pipeline_buffer_words: u64,
    /// Register-file capacity in words during this phase.
    pub rf_capacity_words: u64,
}

impl PhaseSplit {
    /// Convenience constructor.
    pub fn new(pipeline_buffer_words: u64, rf_capacity_words: u64) -> Self {
        Self {
            pipeline_buffer_words,
            rf_capacity_words,
        }
    }

    /// The global split a [`ScheduleOptions`] implies — the degenerate
    /// uniform repartition.
    pub fn of_options(opts: &ScheduleOptions) -> Self {
        Self {
            pipeline_buffer_words: opts.pipeline_buffer_words,
            rf_capacity_words: opts.rf_capacity_words,
        }
    }

    /// Words this split withholds from CHORD.
    pub fn reserved_words(&self) -> u64 {
        self.pipeline_buffer_words
            .saturating_add(self.rf_capacity_words)
    }

    /// Does the split fit an SRAM of `sram_words`?
    pub fn fits(&self, sram_words: u64) -> bool {
        self.reserved_words() <= sram_words
    }
}

/// How the per-phase splits are specified.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PhaseSplits {
    /// Explicit phase-index → split overrides (indices past the built phase
    /// list are ignored; unlisted phases keep the global split).
    ByIndex(BTreeMap<usize, PhaseSplit>),
    /// Behavioral profile: fused (multi-op) pipeline clusters take one
    /// split, solo clusters the other. This is the form the DSE searches —
    /// it is phase-structure-agnostic, so one profile applies to every
    /// candidate schedule of a space.
    ByKind {
        /// Split for fused (multi-op) clusters.
        fused: PhaseSplit,
        /// Split for solo (single-op) clusters.
        solo: PhaseSplit,
    },
}

/// A per-phase SRAM repartition request, declared against the SRAM budget it
/// must respect. See the module docs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseRepartition {
    /// The SRAM capacity in words the splits were validated against
    /// (`CelloConfig::sram_words()` for the paper accelerator).
    pub sram_words: u64,
    /// The split specification.
    pub splits: PhaseSplits,
}

/// Typed rejection of a degenerate repartition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepartitionError {
    /// A phase's split reserves more than the whole SRAM
    /// (`pipeline + rf > sram_words`), leaving CHORD negative capacity.
    Overcommitted {
        /// Which phase (an index, or `fused`/`solo` for kind profiles).
        phase: String,
        /// The offending pipeline-buffer reservation.
        pipeline_buffer_words: u64,
        /// The offending register-file reservation.
        rf_capacity_words: u64,
        /// The budget it had to fit.
        sram_words: u64,
    },
}

impl fmt::Display for RepartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepartitionError::Overcommitted {
                phase,
                pipeline_buffer_words,
                rf_capacity_words,
                sram_words,
            } => write!(
                f,
                "phase {phase}: pipeline {pipeline_buffer_words} + rf {rf_capacity_words} \
                 words overcommit the {sram_words}-word SRAM"
            ),
        }
    }
}

impl std::error::Error for RepartitionError {}

impl PhaseRepartition {
    /// Validated explicit per-phase overrides. Rejects any split with
    /// `pipeline + rf > sram_words`.
    pub fn by_index(
        sram_words: u64,
        splits: BTreeMap<usize, PhaseSplit>,
    ) -> Result<Self, RepartitionError> {
        for (phase, split) in &splits {
            check(split, sram_words, || phase.to_string())?;
        }
        Ok(Self {
            sram_words,
            splits: PhaseSplits::ByIndex(splits),
        })
    }

    /// Validated fused/solo profile.
    pub fn by_kind(
        sram_words: u64,
        fused: PhaseSplit,
        solo: PhaseSplit,
    ) -> Result<Self, RepartitionError> {
        check(&fused, sram_words, || "fused".into())?;
        check(&solo, sram_words, || "solo".into())?;
        Ok(Self {
            sram_words,
            splits: PhaseSplits::ByKind { fused, solo },
        })
    }

    /// Re-validates (for repartitions built through the public fields).
    pub fn validate(&self) -> Result<(), RepartitionError> {
        match &self.splits {
            PhaseSplits::ByIndex(map) => {
                for (phase, split) in map {
                    check(split, self.sram_words, || phase.to_string())?;
                }
            }
            PhaseSplits::ByKind { fused, solo } => {
                check(fused, self.sram_words, || "fused".into())?;
                check(solo, self.sram_words, || "solo".into())?;
            }
        }
        Ok(())
    }

    /// The pipeline-buffer budget the schedule builder probes cluster joins
    /// against while *forming* phase `phase_idx` — a join is what makes a
    /// cluster fused, so kind profiles answer with the fused split.
    /// Overcommitted entries are dropped (advisory semantics, like every
    /// other constraint): the global split applies instead.
    pub fn join_pipeline_budget(&self, phase_idx: usize, global: &PhaseSplit) -> u64 {
        let split = match &self.splits {
            PhaseSplits::ByIndex(map) => map.get(&phase_idx).copied(),
            PhaseSplits::ByKind { fused, .. } => Some(*fused),
        };
        match split {
            Some(s) if s.fits(self.sram_words) => s.pipeline_buffer_words,
            _ => global.pipeline_buffer_words,
        }
    }

    /// The split phase `phase_idx` (fused = multi-op) actually carries once
    /// the cluster list is final. Overcommitted entries fall back to
    /// `global`.
    pub fn resolve(&self, phase_idx: usize, fused: bool, global: PhaseSplit) -> PhaseSplit {
        let split = match &self.splits {
            PhaseSplits::ByIndex(map) => map.get(&phase_idx).copied(),
            PhaseSplits::ByKind { fused: f, solo } => Some(if fused { *f } else { *solo }),
        };
        match split {
            Some(s) if s.fits(self.sram_words) => s,
            _ => global,
        }
    }
}

fn check(
    split: &PhaseSplit,
    sram_words: u64,
    phase: impl FnOnce() -> String,
) -> Result<(), RepartitionError> {
    if split.fits(sram_words) {
        Ok(())
    } else {
        Err(RepartitionError::Overcommitted {
            phase: phase(),
            pipeline_buffer_words: split.pipeline_buffer_words,
            rf_capacity_words: split.rf_capacity_words,
            sram_words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRAM: u64 = 1 << 20;

    #[test]
    fn split_reservation_and_fit() {
        let s = PhaseSplit::new(65_536, 16_384);
        assert_eq!(s.reserved_words(), 81_920);
        assert!(s.fits(SRAM));
        assert!(!s.fits(81_919));
        assert!(s.fits(81_920), "exactly-full reservation is legal");
        // Saturating reservation: no overflow on absurd requests.
        assert_eq!(
            PhaseSplit::new(u64::MAX, 1).reserved_words(),
            u64::MAX,
            "reservation saturates"
        );
    }

    #[test]
    fn of_options_mirrors_global_split() {
        let opts = ScheduleOptions::cello();
        let s = PhaseSplit::of_options(&opts);
        assert_eq!(s.pipeline_buffer_words, opts.pipeline_buffer_words);
        assert_eq!(s.rf_capacity_words, opts.rf_capacity_words);
    }

    /// The satellite fix: a degenerate repartition is a typed error at
    /// constraint-validation time, not a simulator clamp.
    #[test]
    fn overcommitted_split_is_typed_error() {
        let bad = PhaseSplit::new(SRAM, 1);
        let err = PhaseRepartition::by_kind(SRAM, PhaseSplit::new(4096, 4096), bad).unwrap_err();
        match &err {
            RepartitionError::Overcommitted {
                phase,
                pipeline_buffer_words,
                rf_capacity_words,
                sram_words,
            } => {
                assert_eq!(phase, "solo");
                assert_eq!(*pipeline_buffer_words, SRAM);
                assert_eq!(*rf_capacity_words, 1);
                assert_eq!(*sram_words, SRAM);
            }
        }
        let msg = err.to_string();
        assert!(msg.contains("solo") && msg.contains("overcommit"), "{msg}");

        let err =
            PhaseRepartition::by_index(SRAM, [(3usize, bad)].into_iter().collect()).unwrap_err();
        assert!(matches!(
            err,
            RepartitionError::Overcommitted { ref phase, .. } if phase == "3"
        ));
        // Valid ones construct fine and re-validate.
        let ok =
            PhaseRepartition::by_kind(SRAM, PhaseSplit::new(65_536, 16_384), PhaseSplit::new(0, 0))
                .unwrap();
        ok.validate().unwrap();
    }

    #[test]
    fn hand_built_repartition_revalidates() {
        let rep = PhaseRepartition {
            sram_words: 100,
            splits: PhaseSplits::ByIndex([(0, PhaseSplit::new(80, 40))].into_iter().collect()),
        };
        assert!(rep.validate().is_err());
    }

    #[test]
    fn resolution_prefers_override_and_drops_overcommitted() {
        let global = PhaseSplit::new(65_536, 16_384);
        let rep = PhaseRepartition {
            sram_words: SRAM,
            splits: PhaseSplits::ByIndex(
                [
                    (0, PhaseSplit::new(4096, 4096)),
                    (2, PhaseSplit::new(SRAM, SRAM)), // overcommitted: dropped
                ]
                .into_iter()
                .collect(),
            ),
        };
        assert_eq!(rep.resolve(0, true, global), PhaseSplit::new(4096, 4096));
        assert_eq!(rep.resolve(1, false, global), global, "unlisted phase");
        assert_eq!(rep.resolve(2, true, global), global, "overcommitted drops");
        assert_eq!(rep.join_pipeline_budget(0, &global), 4096);
        assert_eq!(rep.join_pipeline_budget(1, &global), 65_536);

        let kind = PhaseRepartition::by_kind(
            SRAM,
            PhaseSplit::new(262_144, 16_384),
            PhaseSplit::new(1024, 4096),
        )
        .unwrap();
        assert_eq!(
            kind.resolve(7, true, global),
            PhaseSplit::new(262_144, 16_384)
        );
        assert_eq!(kind.resolve(7, false, global), PhaseSplit::new(1024, 4096));
        // Joining is what fuses a cluster: the probe budget is the fused one.
        assert_eq!(kind.join_pipeline_budget(7, &global), 262_144);
    }
}

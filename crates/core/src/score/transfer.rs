//! Transfer tuning — *when* DRAM traffic moves, not just how much.
//!
//! The analytical evaluators charge DRAM traffic per phase, but a schedule
//! also decides transfer *ordering*: how many upcoming phases may prefetch
//! their inbound operands while earlier phases compute, and whether the
//! staging region is double-buffered so prefetch overlaps the *current*
//! phase's own DRAM demand. A [`TransferTuning`] captures that decision:
//!
//! - `prefetch_depth` — how many future phases the DMA engine may run ahead
//!   of compute. Depth 0 disables overlap entirely and replays the
//!   serialized `max(compute, mem) + noc` cycle model bit-identically.
//! - `double_buffer` — with double-buffering, prefetch proceeds at full
//!   DRAM bandwidth concurrently with the executing phase's demand misses
//!   (two staging banks ping-pong); without it, prefetch can only use the
//!   bandwidth the executing phase leaves idle.
//!
//! Overlap is not free: each unit of depth carves a staging quantum
//! (`CelloConfig::staging_quantum_words`, doubled when double-buffered) out
//!   of the SRAM that CHORD would otherwise own, so deep prefetch trades
//! reuse capacity for latency hiding — a genuine co-design axis, searched
//! by `cello-search` like every other schedule decision.

use serde::{Deserialize, Serialize};

/// Per-schedule DRAM transfer-ordering decision (prefetch + double-buffer).
///
/// The default (`depth 0`, single-buffered) is the serialized model: every
/// phase pays `max(compute, transfer)` with no cross-phase hiding and no
/// staging carve. See the module docs for the semantics of each knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransferTuning {
    /// How many upcoming phases may stage their inbound DRAM operands while
    /// earlier phases compute (0 = no prefetch, the serialized model).
    pub prefetch_depth: u8,
    /// Ping-pong the staging region so prefetch runs at full DRAM bandwidth
    /// concurrently with the executing phase's own demand traffic. Doubles
    /// the staging carve. Meaningless (and normalized away) at depth 0.
    pub double_buffer: bool,
}

impl TransferTuning {
    /// The serialized model: no prefetch, no carve.
    pub fn off() -> Self {
        Self::default()
    }

    /// Prefetch `depth` phases ahead with double-buffered staging.
    pub fn double_buffered(depth: u8) -> Self {
        Self {
            prefetch_depth: depth,
            double_buffer: true,
        }
        .normalized()
    }

    /// Prefetch `depth` phases ahead, single-buffered (idle-bandwidth only).
    pub fn single_buffered(depth: u8) -> Self {
        Self {
            prefetch_depth: depth,
            double_buffer: false,
        }
    }

    /// True when this tuning changes nothing (the depth-0 serialized model).
    pub fn is_off(&self) -> bool {
        self.prefetch_depth == 0
    }

    /// Canonical form: `double_buffer` is dead metadata at depth 0, so it is
    /// cleared there — `off()` has exactly one representation, which keeps
    /// schedule keys and wire codecs collapse-stable.
    pub fn normalized(self) -> Self {
        if self.prefetch_depth == 0 {
            Self::off()
        } else {
            self
        }
    }

    /// Words of SRAM the staging region reserves (and CHORD loses), given
    /// the accelerator's per-depth staging quantum.
    pub fn staging_words(&self, quantum_words: u64) -> u64 {
        let banks = if self.double_buffer { 2 } else { 1 };
        (self.prefetch_depth as u64)
            .saturating_mul(quantum_words)
            .saturating_mul(banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_carves_nothing() {
        let t = TransferTuning::default();
        assert!(t.is_off());
        assert_eq!(t, TransferTuning::off());
        assert_eq!(t.staging_words(4096), 0);
    }

    #[test]
    fn staging_carve_scales_with_depth_and_banks() {
        assert_eq!(TransferTuning::single_buffered(2).staging_words(4096), 8192);
        assert_eq!(
            TransferTuning::double_buffered(2).staging_words(4096),
            16_384
        );
        // Saturates instead of overflowing on absurd quanta.
        assert_eq!(
            TransferTuning::double_buffered(255).staging_words(u64::MAX),
            u64::MAX
        );
    }

    #[test]
    fn depth_zero_normalizes_away_double_buffering() {
        let t = TransferTuning {
            prefetch_depth: 0,
            double_buffer: true,
        };
        assert_eq!(t.normalized(), TransferTuning::off());
        assert_eq!(TransferTuning::double_buffered(0), TransferTuning::off());
        // Depth >0 keeps its flag.
        assert!(TransferTuning::double_buffered(1).double_buffer);
    }
}

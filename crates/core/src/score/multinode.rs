//! Scalable multi-node dataflow (§V-B "Scalable Dataflow", Fig 8 bottom).
//!
//! With multiple accelerator nodes, SCORE parallelizes the *dominant* rank
//! across nodes and keeps pipelining within a node, so only the **small**
//! tensors cross the NoC:
//!
//! - naive strategy (Fig 8 top): pipelining split across nodes moves the
//!   intermediate `R` — `M × N` words — through the NoC;
//! - scalable strategy (Fig 8 bottom): each node owns a slice of `M`; only
//!   `Λ` is broadcast and `Γ` partials reduced:
//!   `N × N' × (Hops_broadcast + Hops_reduce)` words.
//!
//! Since `M ≫ N × hops` in CG, the scalable strategy wins by orders of
//! magnitude; the `ablation_noc` harness regenerates the comparison.

use serde::{Deserialize, Serialize};

/// A 2-D mesh NoC of `nodes` accelerator nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocModel {
    /// Number of nodes (assumed arranged in a near-square mesh).
    pub nodes: u64,
}

impl NocModel {
    /// Creates a NoC model.
    pub fn new(nodes: u64) -> Self {
        assert!(nodes >= 1);
        Self { nodes }
    }

    /// Mesh side length (⌈√nodes⌉).
    pub fn mesh_side(&self) -> u64 {
        (self.nodes as f64).sqrt().ceil() as u64
    }

    /// Worst-case hop count of a broadcast from a corner (2·(side−1)).
    pub fn hops_broadcast(&self) -> u64 {
        2 * (self.mesh_side().saturating_sub(1))
    }

    /// Hop count of a dimension-ordered reduction (same diameter).
    pub fn hops_reduce(&self) -> u64 {
        self.hops_broadcast()
    }

    /// NoC word-hops of the naive strategy: the big `M×N` intermediate moves
    /// between pipeline stages placed on different nodes.
    pub fn naive_words(&self, m: u64, n: u64) -> u64 {
        m * n
    }

    /// NoC word-hops of the scalable strategy:
    /// `SIZE_Λ × HOPS_broadcast + SIZE_Γ × HOPS_reduce` with the small
    /// tensors sized `N × N'`.
    pub fn scalable_words(&self, n: u64, nprime: u64) -> u64 {
        n * nprime * (self.hops_broadcast() + self.hops_reduce())
    }

    /// The improvement factor of the scalable strategy (∞-safe).
    pub fn advantage(&self, m: u64, n: u64, nprime: u64) -> f64 {
        let scalable = self.scalable_words(n, nprime).max(1);
        self.naive_words(m, n) as f64 / scalable as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_geometry() {
        assert_eq!(NocModel::new(1).mesh_side(), 1);
        assert_eq!(NocModel::new(4).mesh_side(), 2);
        assert_eq!(NocModel::new(16).mesh_side(), 4);
        assert_eq!(NocModel::new(17).mesh_side(), 5);
    }

    #[test]
    fn single_node_has_no_hops() {
        let noc = NocModel::new(1);
        assert_eq!(noc.hops_broadcast(), 0);
        assert_eq!(noc.scalable_words(16, 16), 0);
    }

    /// The paper's argument: M >> N × hops, so moving Λ/Γ beats moving R.
    #[test]
    fn scalable_beats_naive_on_cg_shapes() {
        let noc = NocModel::new(16);
        let (m, n, nprime) = (1_000_000u64, 8u64, 8u64);
        let naive = noc.naive_words(m, n);
        let scalable = noc.scalable_words(n, nprime);
        assert!(
            naive > 1000 * scalable,
            "naive {naive} vs scalable {scalable}"
        );
        assert!(noc.advantage(m, n, nprime) > 1000.0);
    }

    #[test]
    fn advantage_shrinks_with_mesh_size() {
        // More nodes -> more hops -> less advantage (still enormous for CG).
        let a4 = NocModel::new(4).advantage(1_000_000, 8, 8);
        let a64 = NocModel::new(64).advantage(1_000_000, 8, 8);
        assert!(a4 > a64);
        assert!(a64 > 100.0);
    }

    #[test]
    fn naive_scales_with_m() {
        let noc = NocModel::new(4);
        assert_eq!(noc.naive_words(100, 8), 800);
        assert_eq!(noc.naive_words(200, 8), 1600);
        // Scalable is independent of M entirely.
        assert_eq!(noc.scalable_words(8, 8), noc.scalable_words(8, 8));
    }
}

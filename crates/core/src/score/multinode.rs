//! Scalable multi-node dataflow (§V-B "Scalable Dataflow", Fig 8 bottom).
//!
//! With multiple accelerator nodes, SCORE parallelizes the *dominant* rank
//! across nodes and keeps pipelining within a node, so only the **small**
//! tensors cross the NoC:
//!
//! - naive strategy (Fig 8 top): pipelining split across nodes moves the
//!   intermediate `R` — `M × N` words — through the NoC;
//! - scalable strategy (Fig 8 bottom): each node owns a slice of `M`; only
//!   `Λ` is broadcast and `Γ` partials reduced:
//!   `N × N' × (Hops_broadcast + Hops_reduce)` words.
//!
//! Since `M ≫ N × hops` in CG, the scalable strategy wins by orders of
//! magnitude; the `ablation_noc` harness regenerates the comparison.
//!
//! Both strategies are expressible as **schedule decisions**: a
//! [`Partition`] (node count + [`PartitionAxis`]) rides on a
//! `ScheduleConstraints`, is validated by `build_schedule_with` (only
//! dominant-rank parallelization keeps pipelining intra-node), and the
//! simulator's engine scores the resulting per-node tile footprints and NoC
//! word-hops. [`NocModel`] supplies the mesh geometry the engine charges
//! hops against; the `cello-search` DSE engine explores node counts and
//! axes like any other decision dimension.

use cello_graph::dag::TensorDag;
use cello_graph::node::Dominance;
use cello_tensor::shape::RankId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A 2-D mesh NoC of `nodes` accelerator nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocModel {
    /// Number of nodes (assumed arranged in a near-square mesh).
    pub nodes: u64,
}

impl NocModel {
    /// Creates a NoC model.
    pub fn new(nodes: u64) -> Self {
        assert!(nodes >= 1);
        Self { nodes }
    }

    /// Mesh side length (⌈√nodes⌉).
    pub fn mesh_side(&self) -> u64 {
        (self.nodes as f64).sqrt().ceil() as u64
    }

    /// Worst-case hop count of a broadcast from a corner (2·(side−1)).
    pub fn hops_broadcast(&self) -> u64 {
        2 * (self.mesh_side().saturating_sub(1))
    }

    /// Hop count of a dimension-ordered reduction (same diameter).
    pub fn hops_reduce(&self) -> u64 {
        self.hops_broadcast()
    }

    /// NoC word-hops of the naive strategy: the big `M×N` intermediate moves
    /// between pipeline stages placed on different nodes.
    pub fn naive_words(&self, m: u64, n: u64) -> u64 {
        m * n
    }

    /// NoC word-hops of the scalable strategy:
    /// `SIZE_Λ × HOPS_broadcast + SIZE_Γ × HOPS_reduce` with the small
    /// tensors sized `N × N'`.
    pub fn scalable_words(&self, n: u64, nprime: u64) -> u64 {
        n * nprime * (self.hops_broadcast() + self.hops_reduce())
    }

    /// The improvement factor of the scalable strategy (∞-safe).
    pub fn advantage(&self, m: u64, n: u64, nprime: u64) -> f64 {
        let scalable = self.scalable_words(n, nprime).max(1);
        self.naive_words(m, n) as f64 / scalable as f64
    }
}

/// Which dataflow axis a multi-node schedule parallelizes (Fig 8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionAxis {
    /// Slice this rank across nodes (Fig 8 bottom when the rank is the
    /// producers' dominant rank): every tensor carrying the rank is split
    /// `1/nodes` per node, tensors without it are broadcast/reduced over the
    /// NoC, and pipelining stays intra-node as long as producers stream the
    /// sliced rank outermost.
    Rank(RankId),
    /// Place pipeline stages on different nodes (Fig 8 top, the naive
    /// strategy): tensor footprints are not sliced and every realized
    /// (pipelined) edge ships its full intermediate through the NoC.
    #[default]
    Stage,
}

/// A schedule's multi-node partitioning decision: how many accelerator nodes
/// share the work and along which [`PartitionAxis`]. `nodes == 1` means the
/// single-node dataflow regardless of axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Number of accelerator nodes (mesh-arranged, see [`NocModel`]).
    pub nodes: u64,
    /// The parallelized axis.
    pub axis: PartitionAxis,
}

impl Partition {
    /// The single-node partition (no NoC, no slicing) — the default.
    pub fn single() -> Self {
        Self {
            nodes: 1,
            axis: PartitionAxis::Stage,
        }
    }

    /// Slice `rank` across `nodes` (the §V-B scalable strategy when `rank`
    /// is dominant).
    pub fn by_rank(nodes: u64, rank: RankId) -> Self {
        Self {
            nodes,
            axis: PartitionAxis::Rank(rank),
        }
    }

    /// Split pipeline stages across `nodes` (the Fig 8 top naive strategy).
    pub fn by_stage(nodes: u64) -> Self {
        Self {
            nodes,
            axis: PartitionAxis::Stage,
        }
    }

    /// True when more than one node shares the work.
    pub fn is_multi(&self) -> bool {
        self.nodes > 1
    }

    /// The rank sliced across nodes, when multi-node rank partitioning is in
    /// effect.
    pub fn sliced_rank(&self) -> Option<RankId> {
        match self.axis {
            PartitionAxis::Rank(r) if self.is_multi() => Some(r),
            _ => None,
        }
    }
}

impl Default for Partition {
    fn default() -> Self {
        Self::single()
    }
}

/// The DAG-wide partitionable rank: the dominant rank of the
/// uncontracted-dominant ops, weighted by output footprint (the rank whose
/// slicing shrinks the most per-node working set). Ties break toward the
/// lexicographically smallest rank so the choice is deterministic; returns
/// `None` when no op is uncontracted-dominant (nothing worth slicing).
pub fn dominant_partition_rank(dag: &TensorDag) -> Option<RankId> {
    let mut weights: BTreeMap<RankId, u64> = BTreeMap::new();
    for (_, node) in dag.nodes() {
        if node.dominance == Dominance::Uncontracted {
            *weights.entry(node.spec.dominant().rank).or_default() += node.output.words;
        }
    }
    let mut best: Option<(RankId, u64)> = None;
    for (rank, weight) in weights {
        if best.is_none_or(|(_, w)| weight > w) {
            best = Some((rank, weight));
        }
    }
    best.map(|(rank, _)| rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_geometry() {
        assert_eq!(NocModel::new(1).mesh_side(), 1);
        assert_eq!(NocModel::new(4).mesh_side(), 2);
        assert_eq!(NocModel::new(16).mesh_side(), 4);
        assert_eq!(NocModel::new(17).mesh_side(), 5);
    }

    #[test]
    fn single_node_has_no_hops() {
        let noc = NocModel::new(1);
        assert_eq!(noc.hops_broadcast(), 0);
        assert_eq!(noc.scalable_words(16, 16), 0);
    }

    /// The paper's argument: M >> N × hops, so moving Λ/Γ beats moving R.
    #[test]
    fn scalable_beats_naive_on_cg_shapes() {
        let noc = NocModel::new(16);
        let (m, n, nprime) = (1_000_000u64, 8u64, 8u64);
        let naive = noc.naive_words(m, n);
        let scalable = noc.scalable_words(n, nprime);
        assert!(
            naive > 1000 * scalable,
            "naive {naive} vs scalable {scalable}"
        );
        assert!(noc.advantage(m, n, nprime) > 1000.0);
    }

    #[test]
    fn advantage_shrinks_with_mesh_size() {
        // More nodes -> more hops -> less advantage (still enormous for CG).
        let a4 = NocModel::new(4).advantage(1_000_000, 8, 8);
        let a64 = NocModel::new(64).advantage(1_000_000, 8, 8);
        assert!(a4 > a64);
        assert!(a64 > 100.0);
    }

    #[test]
    fn naive_scales_with_m() {
        let noc = NocModel::new(4);
        assert_eq!(noc.naive_words(100, 8), 800);
        assert_eq!(noc.naive_words(200, 8), 1600);
        // Scalable is independent of M entirely.
        assert_eq!(noc.scalable_words(8, 8), noc.scalable_words(8, 8));
    }

    #[test]
    fn partition_accessors() {
        let single = Partition::single();
        assert!(!single.is_multi());
        assert_eq!(single.sliced_rank(), None);
        assert_eq!(Partition::default(), single);

        let m = RankId::new("m");
        let ranked = Partition::by_rank(4, m);
        assert!(ranked.is_multi());
        assert_eq!(ranked.sliced_rank(), Some(m));

        let staged = Partition::by_stage(4);
        assert!(staged.is_multi());
        assert_eq!(staged.sliced_rank(), None);

        // A 1-node rank partition slices nothing.
        assert_eq!(Partition::by_rank(1, m).sliced_rank(), None);
    }

    #[test]
    fn dominant_partition_rank_on_skewed_dag() {
        use cello_graph::edge::TensorMeta;
        use cello_graph::node::OpKind;
        use cello_tensor::einsum::EinsumSpec;
        use cello_tensor::shape::RankExtent;
        let mut dag = TensorDag::new();
        // Skewed GEMM dominated by m: the partition rank must be m.
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 100_000),
                RankExtent::dense("k", 16),
                RankExtent::dense("n", 16),
            ],
        );
        dag.add_op(
            "u",
            spec,
            OpKind::TensorMac,
            TensorMeta::dense("T", &["m", "n"], 1_600_000),
        );
        assert_eq!(dominant_partition_rank(&dag), Some(RankId::new("m")));

        // A DAG with only contraction-dominant ops has nothing to slice.
        let mut cdag = TensorDag::new();
        let cspec = EinsumSpec::parse(
            "kp,kn->pn",
            &[
                RankExtent::dense("k", 100_000),
                RankExtent::dense("p", 16),
                RankExtent::dense("n", 16),
            ],
        );
        cdag.add_op(
            "c",
            cspec,
            OpKind::TensorMac,
            TensorMeta::dense("D", &["p", "n"], 256),
        );
        assert_eq!(dominant_partition_rank(&cdag), None);
    }
}

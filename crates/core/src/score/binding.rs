//! Cluster formation and tensor→buffer binding (§V-B/C, Fig 5 and Fig 8).
//!
//! SCORE walks the DAG in topological order and greedily grows *pipeline
//! clusters* (the space-time boxes of Fig 8): an op joins the current cluster
//! when every in-cluster producer reaches it through a *realizable* edge
//! (pipelineable / delayed-hold with compatible loop orders and no swizzle),
//! or when it shares a parallel-multicast input with an in-cluster op.
//! Classified-pipelineable edges whose endpoints land in *different* clusters
//! are **not realized** — their tensors are steered to CHORD exactly like
//! writeback operands (§V-C: "steers the operands with downstream consumers
//! requiring writeback to CHORD"). This is how CG's cross-iteration
//! `X(i)→X(i+1)` edge ends up in CHORD.
//!
//! The same builder, parameterized by [`ScheduleOptions`], produces every
//! baseline of Table IV: the oracle op-by-op schedule (no fusion at all),
//! FLAT-like pairwise pipelining (only when the intermediate has a *sole*
//! pipelineable consumer), SET-like (adds delayed-hold and multicast), and
//! CELLO (everything, plus CHORD steering).

use crate::chord::PriorityBias;
use crate::score::classify::{classify, Classification, Dependency};
use crate::score::loop_order::{can_pipeline, choose_loop_order, LoopOrder};
use crate::score::multinode::{Partition, PartitionAxis};
use crate::score::overbook::ChordOverbook;
use crate::score::repartition::{PhaseRepartition, PhaseSplit};
use crate::score::swizzle::{minimize_swizzles, SwizzleReport};
use crate::score::tiling::{pipeline_can_stream, rf_fits};
use crate::score::transfer::TransferTuning;
use cello_graph::dag::{EdgeId, NodeId, TensorDag};
use cello_graph::node::OpKind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How aggressively a scheduler may realize pipelining (Table IV rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineScope {
    /// Never pipeline (oracle op-by-op, Flexagon-like).
    None,
    /// Pipeline only intermediates whose *single* consumer is pipelineable
    /// (FLAT-like: "instances with delayed downstream consumers are not
    /// considered").
    SoleConsumer,
    /// Pipeline when every consumer is pipelineable or delayed-hold
    /// (SET-like: hold slots cover the delayed ones).
    AllPipelineOrHold,
    /// Pipeline whatever fits; CHORD covers the rest (CELLO).
    Any,
}

/// Scheduler feature switches.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOptions {
    /// Pipelining realization scope.
    pub scope: PipelineScope,
    /// Serve delayed-hold edges from the pipeline buffer (SET, CELLO).
    pub enable_hold: bool,
    /// Fuse parallel-multicast siblings into one cluster (SET, CELLO).
    pub enable_multicast: bool,
    /// Steer writeback/sequential operands to CHORD (CELLO only).
    pub enable_chord: bool,
    /// Register-file capacity in words (small-tensor threshold).
    pub rf_capacity_words: u64,
    /// Pipeline-buffer capacity in words.
    pub pipeline_buffer_words: u64,
}

impl ScheduleOptions {
    /// CELLO: SCORE + CHORD (Table IV last row).
    pub fn cello() -> Self {
        Self {
            scope: PipelineScope::Any,
            enable_hold: true,
            enable_multicast: true,
            enable_chord: true,
            rf_capacity_words: 16_384,
            pipeline_buffer_words: 65_536,
        }
    }

    /// Oracle op-by-op (Flexagon-like best intra-layer). `rf_capacity_words`
    /// is 0 because in the op-by-op oracle "all tensor operands begin and end
    /// in DRAM" (§VII-A1) — the RF only serves reuse *within* one op, which
    /// the cold-access accounting already assumes.
    pub fn best_intra() -> Self {
        Self {
            scope: PipelineScope::None,
            enable_hold: false,
            enable_multicast: false,
            enable_chord: false,
            rf_capacity_words: 0,
            ..Self::cello()
        }
    }

    /// FLAT-like adjacent pipelining (oracle op-by-op plus pairwise
    /// pipelining — operands still begin and end in DRAM).
    pub fn flat() -> Self {
        Self {
            scope: PipelineScope::SoleConsumer,
            ..Self::best_intra()
        }
    }

    /// SET-like pipelining + delayed hold.
    pub fn set_like() -> Self {
        Self {
            scope: PipelineScope::AllPipelineOrHold,
            enable_hold: true,
            enable_multicast: true,
            ..Self::best_intra()
        }
    }

    /// PRELUDE-only (§VII-C3): best-intra schedule; the PRELUDE SRAM is
    /// configured at the simulator level.
    pub fn prelude_only() -> Self {
        Self {
            enable_chord: true, // operands still steered to the (PRELUDE) SRAM
            ..Self::best_intra()
        }
    }
}

/// Where a tensor lives between producer and consumer(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Binding {
    /// Small tensors streamed from the register file (CG's Greek tensors).
    RegisterFile,
    /// All consumers realized in-cluster: lives (transiently) in the pipeline
    /// buffer, never touches DRAM.
    Pipeline,
    /// Steered to CHORD: resident head reused, tail spills (CELLO).
    Chord,
    /// Round-trips through DRAM (baselines / terminal outputs).
    Dram,
}

/// One pipeline cluster: ops co-resident on the PE array (Fig 8 boxes).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// Member ops in topological order.
    pub ops: Vec<NodeId>,
    /// Edges realized as on-chip pipelining inside this cluster.
    pub realized_edges: Vec<EdgeId>,
}

/// A complete SCORE schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schedule {
    /// Pipeline clusters in execution order.
    pub phases: Vec<Phase>,
    /// Per-edge realization flag (true = served by the pipeline buffer).
    pub realized: Vec<bool>,
    /// Tensor name → buffer binding.
    pub binding: BTreeMap<String, Binding>,
    /// The Algorithm 2 classification this schedule was derived from.
    pub classification: Classification,
    /// Per-node loop orders (dominant rank outermost).
    pub loop_orders: Vec<LoopOrder>,
    /// Layout choices minimizing swizzles (Challenge 4, §V-B).
    pub swizzle: SwizzleReport,
    /// The options used.
    pub options: ScheduleOptions,
    /// Multi-node partitioning (§V-B scalable dataflow); single-node unless
    /// the constraints requested (and validity allowed) more.
    pub partition: Partition,
    /// Per-tensor RIFF `(freq, dist)` priority biases — the searched half of
    /// the SCORE-CHORD interface. Only CHORD-bound tensors keep an entry
    /// (bias requests on other bindings are dropped as invalid).
    pub chord_bias: BTreeMap<String, PriorityBias>,
    /// Resolved per-phase SRAM splits, one per phase (§V/§VI co-design at
    /// phase granularity). All entries equal the global
    /// `options.{pipeline_buffer_words, rf_capacity_words}` split unless a
    /// [`ScheduleConstraints::phase_repartition`] was applied — the uniform
    /// case is the degenerate global split, bit-exact in both evaluators.
    pub phase_splits: Vec<PhaseSplit>,
    /// DRAM transfer ordering (prefetch depth + double-buffering). The
    /// default ([`TransferTuning::off`]) replays the serialized cycle model
    /// bit-identically; see [`crate::score::transfer`].
    pub transfer: TransferTuning,
    /// CHORD overbooking level. The default ([`ChordOverbook::off`]) keeps
    /// the worst-case-dense capacity model bit-identically; see
    /// [`crate::score::overbook`].
    pub chord_overbook: ChordOverbook,
}

impl Schedule {
    /// Phase index of each node.
    pub fn phase_of(&self) -> Vec<usize> {
        let n: usize = self.phases.iter().map(|p| p.ops.len()).sum();
        let mut out = vec![usize::MAX; n];
        for (pi, p) in self.phases.iter().enumerate() {
            for &op in &p.ops {
                out[op.0] = pi;
            }
        }
        out
    }

    /// Flattened execution order.
    pub fn order(&self) -> Vec<NodeId> {
        self.phases.iter().flat_map(|p| p.ops.clone()).collect()
    }

    /// Binding of a tensor (DRAM if unknown).
    pub fn binding_of(&self, tensor: &str) -> Binding {
        self.binding.get(tensor).copied().unwrap_or(Binding::Dram)
    }

    /// The SRAM split in force during `phase` (the global split for
    /// out-of-range indices, e.g. the drain pseudo-phase).
    pub fn phase_split(&self, phase: usize) -> PhaseSplit {
        self.phase_splits
            .get(phase)
            .copied()
            .unwrap_or_else(|| PhaseSplit::of_options(&self.options))
    }

    /// True when some phase deviates from the global split — the signal for
    /// the simulator to resize CHORD at phase boundaries. The uniform
    /// repartition stays on the global path (bit-exact with no repartition).
    pub fn repartition_active(&self) -> bool {
        let global = PhaseSplit::of_options(&self.options);
        self.phase_splits.iter().any(|s| *s != global)
    }

    /// Validates that the phase sequence is a topological order of the DAG,
    /// that co-phase edges are realized, and that a rank-partitioned
    /// schedule only realizes edges whose producer streams the sliced rank
    /// outermost (the §V-B rule: only dominant-rank parallelization keeps
    /// pipelining intra-node). Used by tests.
    pub fn validate(&self, dag: &TensorDag) -> Result<(), String> {
        let phase_of = self.phase_of();
        if phase_of.contains(&usize::MAX) {
            return Err("some node was never scheduled".into());
        }
        if self.phase_splits.len() != self.phases.len() {
            return Err(format!(
                "{} phase splits for {} phases",
                self.phase_splits.len(),
                self.phases.len()
            ));
        }
        for (eid, edge) in dag.edges() {
            let (ps, pd) = (phase_of[edge.src], phase_of[edge.dst]);
            if ps > pd {
                return Err(format!("edge {eid:?} goes backward across phases"));
            }
            if ps == pd && !self.realized[eid.0] {
                return Err(format!(
                    "edge {eid:?} co-scheduled in phase {ps} but not realized"
                ));
            }
            if let Some(rank) = self.partition.sliced_rank() {
                if self.realized[eid.0] && self.loop_orders[edge.src].outermost() != rank {
                    return Err(format!(
                        "edge {eid:?} realized but its producer does not stream \
                         the sliced rank {rank:?} outermost (cross-node pipeline)"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Does the producer's tensor satisfy the scope rule for realization?
fn scope_allows(dag: &TensorDag, cls: &Classification, src: NodeId, scope: PipelineScope) -> bool {
    let outs = dag.out_edges(src);
    match scope {
        PipelineScope::None => false,
        PipelineScope::SoleConsumer => {
            outs.len() == 1 && cls.dep(outs[0]) == Dependency::Pipelineable
        }
        PipelineScope::AllPipelineOrHold => outs.iter().all(|&e| {
            matches!(
                cls.dep(e),
                Dependency::Pipelineable | Dependency::DelayedHold
            )
        }),
        PipelineScope::Any => true,
    }
}

/// Is edge `e` realizable as in-cluster pipelining under `opts` and
/// `partition`, with `pipeline_budget` words of streaming buffer available
/// to the forming cluster (per-phase under a repartition, global otherwise)?
fn realizable(
    dag: &TensorDag,
    cls: &Classification,
    orders: &[LoopOrder],
    opts: &ScheduleOptions,
    partition: &Partition,
    pipeline_budget: u64,
    e: EdgeId,
) -> bool {
    let edge = dag.edge(e);
    let dep = cls.dep(e);
    let kind_ok = match dep {
        Dependency::Pipelineable => true,
        Dependency::DelayedHold => opts.enable_hold,
        _ => false,
    };
    // §V-B scalable-dataflow rule: with work sliced along a rank, pipelining
    // stays intra-node only when the producer streams that rank outermost
    // (each node then pipelines its own slice). Any other producer order
    // would put the stream's slices on different nodes, so the edge must
    // not realize. The `Stage` axis deliberately allows realization — that
    // IS the naive strategy, and the engine charges its NoC cost.
    let partition_ok = partition
        .sliced_rank()
        .is_none_or(|rank| orders[edge.src].outermost() == rank);
    kind_ok
        && partition_ok
        && scope_allows(dag, cls, NodeId(edge.src), opts.scope)
        && can_pipeline(dag, cls, e, &orders[edge.src], &orders[edge.dst])
        && pipeline_can_stream(
            stream_row_words(dag, NodeId(edge.src), &orders[edge.src]),
            pipeline_budget,
            1,
        )
}

/// Do `v` and some member of `cluster` share a parallel-multicast input?
fn shares_multicast_input(
    dag: &TensorDag,
    cls: &Classification,
    v: NodeId,
    cluster: &[NodeId],
) -> bool {
    for eid in dag.in_edges(v) {
        let src = NodeId(dag.edge(eid).src);
        if !cls.is_multicast(src) || cls.transitive[eid.0] {
            continue;
        }
        for sib in dag.out_edges(src) {
            let sib_edge = dag.edge(sib);
            if !cls.transitive[sib.0] && cluster.contains(&NodeId(sib_edge.dst)) {
                return true;
            }
        }
    }
    false
}

/// Programmatic schedule-construction constraints — the hook the DSE engine
/// (`cello-search`) uses to explore the §V schedule space instead of being
/// limited to the preset [`ScheduleOptions`] heuristics.
///
/// Every constraint is *advisory toward validity*: the builder applies a
/// constraint only when the resulting schedule stays valid (per-tensor
/// binding rules, cluster topology), so any constraint set yields a
/// schedule that passes [`Schedule::validate`]. Invalid requests are
/// silently dropped rather than rejected — the search treats them as
/// no-ops, and the memo cache (keyed by the canonicalized *schedule*)
/// dedupes the resulting duplicates.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConstraints {
    /// Node indices forced to start a new pipeline cluster (a "cluster cut"):
    /// the builder never joins such a node to the running cluster.
    pub cut_before: BTreeSet<usize>,
    /// Tensor name → requested binding. Applied only when valid:
    /// `RegisterFile` requires the tensor to fit the RF; `Pipeline` requires
    /// every consumer edge realized; `Chord` requires `enable_chord` and a
    /// non-terminal tensor (terminal results must drain to DRAM); `Dram` is
    /// always honored.
    pub binding_overrides: BTreeMap<String, Binding>,
    /// Node index → loop order override (ranks outermost-first). The order
    /// must be a permutation of the node's ranks; others are ignored.
    pub loop_orders: BTreeMap<usize, LoopOrder>,
    /// Requested multi-node partition (`None` = single node). A `Rank` axis
    /// naming a rank no op iterates degrades to single-node; a valid rank
    /// axis additionally *constrains realization*: edges whose producer does
    /// not stream the sliced rank outermost cannot pipeline intra-node, so
    /// the builder refuses to realize them (the §V-B validity rule).
    pub partition: Option<Partition>,
    /// Tensor name → RIFF priority bias. Applied only when the schedule
    /// actually steers the tensor to CHORD (and `enable_chord` is on):
    /// biasing an RF/pipeline/DRAM-bound tensor would be dead metadata, so
    /// such requests are dropped like any other invalid constraint.
    pub chord_priority_bias: BTreeMap<String, PriorityBias>,
    /// Per-phase SRAM split request (`None` = the global split everywhere).
    /// Splits are validated against the repartition's own declared
    /// `sram_words` budget: an overcommitted split (`pipeline + rf >
    /// sram_words` — a typed [`crate::score::repartition::RepartitionError`]
    /// from the validated constructors) is dropped in favor of the global
    /// split, like every other invalid constraint.
    pub phase_repartition: Option<PhaseRepartition>,
    /// Requested DRAM transfer ordering (`None` = the serialized default).
    /// Always valid — every depth is executable; the evaluators price the
    /// staging carve it implies, so the search sees its real cost. The
    /// builder normalizes it (`double_buffer` is cleared at depth 0) so the
    /// no-op request collapses onto the unconstrained schedule.
    pub transfer: Option<TransferTuning>,
    /// Requested CHORD overbooking (`None` = worst-case dense). Always
    /// valid — it only reshapes what the evaluators charge for
    /// occupancy-carrying CHORD operands; tensors without measured
    /// occupancy keep their dense footprints regardless of the level.
    pub chord_overbook: Option<ChordOverbook>,
}

impl ScheduleConstraints {
    /// No constraints: `build_schedule_with` degenerates to `build_schedule`.
    pub fn none() -> Self {
        Self::default()
    }

    /// Only a partition request, everything else unconstrained.
    pub fn partitioned(partition: Partition) -> Self {
        Self {
            partition: Some(partition),
            ..Self::default()
        }
    }

    /// True when no constraint is set (a normalized-to-off transfer request
    /// counts as unset — it is the no-op decision).
    pub fn is_empty(&self) -> bool {
        self.cut_before.is_empty()
            && self.binding_overrides.is_empty()
            && self.loop_orders.is_empty()
            && self.partition.is_none()
            && self.chord_priority_bias.is_empty()
            && self.phase_repartition.is_none()
            && self.transfer.is_none_or(|t| t.normalized().is_off())
            && self.chord_overbook.is_none_or(|o| o.normalized().is_off())
    }
}

/// Validates a requested partition against the DAG. Node counts below one
/// and `Rank` axes naming unknown ranks degrade to the single-node
/// partition — advisory semantics, like every other constraint.
fn normalize_partition(dag: &TensorDag, requested: Option<Partition>) -> Partition {
    let Some(p) = requested else {
        return Partition::single();
    };
    if p.nodes <= 1 {
        return Partition::single();
    }
    match p.axis {
        PartitionAxis::Rank(rank) => {
            let known = dag
                .nodes()
                .any(|(_, n)| n.spec.extents().iter().any(|e| e.rank == rank));
            if known {
                p
            } else {
                Partition::single()
            }
        }
        PartitionAxis::Stage => p,
    }
}

/// Builds a schedule for `dag` under `opts` (see module docs).
pub fn build_schedule(dag: &TensorDag, opts: ScheduleOptions) -> Schedule {
    build_schedule_with(dag, opts, &ScheduleConstraints::none())
}

/// Is `requested` a valid binding for a tensor with the given properties?
/// `rf_capacity_words` is the tensor's *effective* RF capacity — the
/// minimum over every phase it is live in under a per-phase repartition
/// (the global capacity otherwise).
fn override_valid(
    requested: Binding,
    words: u64,
    terminal: bool,
    all_realized: bool,
    rf_capacity_words: u64,
    opts: &ScheduleOptions,
) -> bool {
    match requested {
        Binding::RegisterFile => rf_fits(words, rf_capacity_words),
        Binding::Pipeline => !terminal && all_realized,
        Binding::Chord => opts.enable_chord && !terminal,
        Binding::Dram => true,
    }
}

/// Builds a schedule for `dag` under `opts` and `constraints` (see
/// [`ScheduleConstraints`]). `build_schedule` is the unconstrained special
/// case.
pub fn build_schedule_with(
    dag: &TensorDag,
    opts: ScheduleOptions,
    constraints: &ScheduleConstraints,
) -> Schedule {
    let cls = classify(dag);
    let partition = normalize_partition(dag, constraints.partition);
    let orders: Vec<LoopOrder> = dag
        .topo_order()
        .into_iter()
        .map(|n| match constraints.loop_orders.get(&n.0) {
            Some(req) if is_rank_permutation(dag, n, req) => req.clone(),
            _ => choose_loop_order(dag, n),
        })
        .collect();

    let global_split = PhaseSplit::of_options(&opts);
    let mut phases: Vec<Phase> = Vec::new();
    let mut realized = vec![false; dag.edge_count()];
    let mut current = Phase {
        ops: Vec::new(),
        realized_edges: Vec::new(),
    };
    // Double-buffered row-tile words the current cluster's realized edges
    // reserve in the pipeline buffer. A join whose added streams would
    // overflow the cluster's pipeline budget is refused — this is what makes
    // the pipeline-buffer size a real scheduling constraint (and a real DSE
    // knob) instead of free SRAM. Under a per-phase repartition the budget
    // is the *forming* phase's (a join is what makes a cluster fused, so
    // kind profiles answer with their fused split).
    let mut current_demand: u64 = 0;

    for v in dag.topo_order() {
        let mut join_edges: Vec<EdgeId> = Vec::new();
        let mut join = false;
        let mut join_demand: u64 = 0;
        if !current.ops.is_empty()
            && opts.scope != PipelineScope::None
            && dag.node(v).kind == OpKind::TensorMac
            && !constraints.cut_before.contains(&v.0)
        {
            let budget = match &constraints.phase_repartition {
                Some(rep) => rep.join_pipeline_budget(phases.len(), &global_split),
                None => global_split.pipeline_buffer_words,
            };
            let in_phase: Vec<EdgeId> = dag
                .in_edges(v)
                .into_iter()
                .filter(|&e| current.ops.contains(&NodeId(dag.edge(e).src)))
                .collect();
            if !in_phase.is_empty() {
                if in_phase
                    .iter()
                    .all(|&e| realizable(dag, &cls, &orders, &opts, &partition, budget, e))
                {
                    join_demand = in_phase
                        .iter()
                        .map(|&e| {
                            let src = NodeId(dag.edge(e).src);
                            2 * stream_row_words(dag, src, &orders[src.0])
                        })
                        .sum();
                    if current_demand + join_demand <= budget {
                        join = true;
                        join_edges = in_phase;
                    }
                }
            } else if opts.enable_multicast && shares_multicast_input(dag, &cls, v, &current.ops) {
                join = true;
            }
        }
        if join {
            current.ops.push(v);
            current_demand += join_demand;
            for e in join_edges {
                realized[e.0] = true;
                current.realized_edges.push(e);
            }
        } else {
            if !current.ops.is_empty() {
                phases.push(
                    std::mem::take(&mut current.ops)
                        .into_phase(std::mem::take(&mut current.realized_edges)),
                );
            }
            current.ops.push(v);
            current_demand = 0;
        }
    }
    if !current.ops.is_empty() {
        phases.push(current.ops.into_phase(current.realized_edges));
    }

    // Resolve the per-phase SRAM splits now that the cluster list is final
    // (fused = multi-op). Without a repartition every phase carries the
    // global split — the degenerate uniform case.
    let phase_splits: Vec<PhaseSplit> = phases
        .iter()
        .enumerate()
        .map(|(pi, p)| match &constraints.phase_repartition {
            Some(rep) => rep.resolve(pi, p.ops.len() > 1, global_split),
            None => global_split,
        })
        .collect();
    let mut node_phase = vec![0usize; dag.node_count()];
    for (pi, p) in phases.iter().enumerate() {
        for &op in &p.ops {
            node_phase[op.0] = pi;
        }
    }
    // An RF-bound tensor occupies the register file in *every* phase it is
    // live in — including the phases it merely sits across between producer
    // and last consumer — so its effective RF capacity is the minimum over
    // that whole contiguous phase range (global under the uniform split).
    // Min-ing only the endpoint phases would let a tensor parked in the RF
    // across an RF-starved intermediate phase overcommit that phase's SRAM
    // for free (CHORD is simultaneously granted the starved split's
    // remainder there).
    let rf_over = |lo: usize, hi: usize| -> u64 {
        phase_splits[lo..=hi.max(lo)]
            .iter()
            .map(|s| s.rf_capacity_words)
            .min()
            .unwrap_or(global_split.rf_capacity_words)
    };
    let eff_rf_node = |nid: NodeId| -> u64 {
        let lo = node_phase[nid.0];
        let hi = dag
            .out_edges(nid)
            .iter()
            .map(|&e| node_phase[dag.edge(e).dst])
            .max()
            .unwrap_or(lo);
        rf_over(lo, hi)
    };

    // Tensor bindings (§V-C "SCORE-CHORD Interface").
    let mut binding = BTreeMap::new();
    for (nid, node) in dag.nodes() {
        let outs = dag.out_edges(nid);
        let terminal = outs.is_empty();
        let all_realized = !terminal && outs.iter().all(|&e| realized[e.0]);
        let rf_words = eff_rf_node(nid);
        let default = if terminal {
            // Terminal results must end in DRAM.
            Binding::Dram
        } else if rf_fits(node.output.words, rf_words) {
            Binding::RegisterFile
        } else if all_realized {
            Binding::Pipeline
        } else if opts.enable_chord {
            Binding::Chord
        } else {
            Binding::Dram
        };
        let b = match constraints.binding_overrides.get(&node.output.name) {
            Some(&req)
                if override_valid(
                    req,
                    node.output.words,
                    terminal,
                    all_realized,
                    rf_words,
                    &opts,
                ) =>
            {
                req
            }
            _ => default,
        };
        binding.insert(node.output.name.clone(), b);
    }
    for ext in dag.externals() {
        // Externals live in the RF from their first to their last consumer.
        let rf_words = match (
            ext.consumers.iter().map(|&(c, _)| node_phase[c]).min(),
            ext.consumers.iter().map(|&(c, _)| node_phase[c]).max(),
        ) {
            (Some(lo), Some(hi)) => rf_over(lo, hi),
            _ => global_split.rf_capacity_words,
        };
        let default = if rf_fits(ext.meta.words, rf_words) {
            Binding::RegisterFile
        } else if opts.enable_chord {
            Binding::Chord
        } else {
            Binding::Dram
        };
        // Externals are DRAM-resident inputs: never terminal (read, not
        // drained) and never pipeline-bound (no producing op) — the
        // `all_realized = false` argument makes `override_valid` reject
        // Pipeline requests.
        let b = match constraints.binding_overrides.get(&ext.meta.name) {
            Some(&req) if override_valid(req, ext.meta.words, false, false, rf_words, &opts) => req,
            _ => default,
        };
        binding.insert(ext.meta.name.clone(), b);
    }

    // CHORD priority biases: honored only for tensors the schedule actually
    // steers to CHORD — everywhere else the RIFF metadata is never read.
    let chord_bias: BTreeMap<String, PriorityBias> = constraints
        .chord_priority_bias
        .iter()
        .filter(|(name, _)| {
            opts.enable_chord && binding.get(name.as_str()) == Some(&Binding::Chord)
        })
        .map(|(name, &bias)| (name.clone(), bias))
        .collect();

    Schedule {
        phases,
        realized,
        binding,
        classification: cls,
        loop_orders: orders,
        swizzle: minimize_swizzles(dag),
        options: opts,
        partition,
        chord_bias,
        phase_splits,
        transfer: constraints
            .transfer
            .map(TransferTuning::normalized)
            .unwrap_or_default(),
        chord_overbook: constraints
            .chord_overbook
            .map(ChordOverbook::normalized)
            .unwrap_or_default(),
    }
}

/// Words of one outermost-rank "row" of the producer's output — the minimum
/// unit a pipelined stream must double-buffer per stage (§V-B Tiling).
fn stream_row_words(dag: &TensorDag, src: NodeId, order: &LoopOrder) -> u64 {
    let node = dag.node(src);
    let outer = order.outermost();
    let extent = node
        .spec
        .extents()
        .iter()
        .find(|r| r.rank == outer)
        .map(|r| r.effective)
        .unwrap_or(1);
    node.output.words.div_ceil(extent.max(1))
}

/// Is `req` a permutation of `node`'s ranks? (Any permutation is executable;
/// the §V-B co-dependence conditions then decide what it can pipeline.)
fn is_rank_permutation(dag: &TensorDag, node: NodeId, req: &LoopOrder) -> bool {
    let mut have: Vec<_> = dag
        .node(node)
        .spec
        .extents()
        .iter()
        .map(|r| r.rank)
        .collect();
    let mut want: Vec<_> = req.order.clone();
    have.sort();
    want.sort();
    have == want
}

trait IntoPhase {
    fn into_phase(self, realized_edges: Vec<EdgeId>) -> Phase;
}

impl IntoPhase for Vec<NodeId> {
    fn into_phase(self, realized_edges: Vec<EdgeId>) -> Phase {
        Phase {
            ops: self,
            realized_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_graph::edge::TensorMeta;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::{RankExtent, RankId};

    const M: u64 = 81_920;
    const N: u64 = 16;

    fn u_spec(big: &str) -> EinsumSpec {
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new(big), RankId::new("j")],
                vec![RankId::new("j"), RankId::new("n")],
            ],
            vec![RankId::new(big), RankId::new("n")],
            &[
                RankExtent::dense(big, M),
                RankExtent::dense("j", N),
                RankExtent::dense("n", N),
            ],
        )
    }

    fn c_spec() -> EinsumSpec {
        EinsumSpec::from_parts(
            vec![
                vec![RankId::new("k"), RankId::new("p")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("p"), RankId::new("n")],
            &[
                RankExtent::dense("k", M),
                RankExtent::dense("p", N),
                RankExtent::dense("n", N),
            ],
        )
    }

    fn small_spec() -> EinsumSpec {
        EinsumSpec::parse(
            "pj,jn->pn",
            &[
                RankExtent::dense("p", N),
                RankExtent::dense("j", N),
                RankExtent::dense("n", N),
            ],
        )
    }

    fn big(name: &str) -> TensorMeta {
        TensorMeta::dense(name, &["m", "n"], M * N)
    }

    fn small(name: &str) -> TensorMeta {
        TensorMeta::dense(name, &["p", "n"], N * N)
    }

    /// One CG iteration: ops 1, 2a, 2b, 3, 4, 5, 6, 7 with the paper's edges.
    fn cg_iteration() -> TensorDag {
        let mut dag = TensorDag::new();
        let spmm = EinsumSpec::from_parts(
            vec![
                vec![RankId::new("m"), RankId::new("k")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("m"), RankId::new("n")],
            &[
                RankExtent::dense("m", M),
                RankExtent::compressed("k", M, 4),
                RankExtent::dense("n", N),
            ],
        );
        let n1 = dag.add_op("1:S=A·P", spmm, OpKind::TensorMac, big("S"));
        let n2a = dag.add_op("2a:Δ=PᵀS", c_spec(), OpKind::TensorMac, small("D"));
        let n2b = dag.add_op("2b:Λ=Δ⁻¹Γ", small_spec(), OpKind::Inverse, small("L"));
        let n3 = dag.add_op("3:X+=PΛ", u_spec("m"), OpKind::TensorMac, big("X"));
        let n4 = dag.add_op("4:R-=SΛ", u_spec("m"), OpKind::TensorMac, big("R"));
        let n5 = dag.add_op("5:Γ=RᵀR", c_spec(), OpKind::TensorMac, small("G"));
        let n6 = dag.add_op("6:Φ=Γp⁻¹Γ", small_spec(), OpKind::Inverse, small("F"));
        let n7 = dag.add_op("7:P=R+PΦ", u_spec("m"), OpKind::TensorMac, big("P"));
        dag.add_edge(n1, n2a, &["k", "n"]); // e0: S -> 2a
        dag.add_edge(n2a, n2b, &["p", "j"]); // e1: Δ -> 2b
        dag.add_edge(n2b, n3, &["j", "n"]); // e2: Λ -> 3
        dag.add_edge(n2b, n4, &["j", "n"]); // e3: Λ -> 4
        dag.add_edge(n1, n4, &["m", "j"]); // e4: S -> 4 (transitive)
        dag.add_edge(n4, n5, &["k", "n"]); // e5: R -> 5
        dag.add_edge(n5, n6, &["p", "j"]); // e6: Γ -> 6
        dag.add_edge(n6, n7, &["j", "n"]); // e7: Φ -> 7
        dag.add_edge(n4, n7, &["m", "j"]); // e8: R -> 7 (transitive)
        dag.add_external(
            TensorMeta::sparse("A", &["m", "k"], M * 4 * 2 + M + 1),
            &[(n1, &["m", "k"])],
        );
        dag
    }

    /// CELLO forms the Fig 8 clusters: [1,2a], [2b], [3,4,5], [6], [7].
    #[test]
    fn cello_forms_fig8_clusters() {
        let dag = cg_iteration();
        let s = build_schedule(&dag, ScheduleOptions::cello());
        let clusters: Vec<Vec<usize>> = s
            .phases
            .iter()
            .map(|p| p.ops.iter().map(|n| n.0).collect())
            .collect();
        assert_eq!(
            clusters,
            vec![vec![0, 1], vec![2], vec![3, 4, 5], vec![6], vec![7]],
            "clusters {clusters:?}"
        );
        s.validate(&dag).unwrap();
    }

    /// In the CELLO schedule, S and R must be steered to CHORD (delayed
    /// writeback consumers), Greek tensors to the RF, P (terminal here) to DRAM.
    #[test]
    fn cello_bindings_on_cg() {
        let dag = cg_iteration();
        let s = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(s.binding_of("S"), Binding::Chord);
        assert_eq!(s.binding_of("R"), Binding::Chord);
        assert_eq!(s.binding_of("D"), Binding::RegisterFile);
        assert_eq!(s.binding_of("L"), Binding::RegisterFile);
        assert_eq!(s.binding_of("G"), Binding::RegisterFile);
        assert_eq!(s.binding_of("P"), Binding::Dram); // terminal in this 1-iter DAG
        assert_eq!(s.binding_of("X"), Binding::Dram); // terminal too
        assert_eq!(s.binding_of("A"), Binding::Chord); // external, too big for RF
    }

    /// The realized edges in CELLO's CG schedule are 1→2a and 4→5 (pipelining)
    /// — the delayed writebacks are NOT realized.
    #[test]
    fn cello_realizes_only_pipeline_edges() {
        let dag = cg_iteration();
        let s = build_schedule(&dag, ScheduleOptions::cello());
        let realized: Vec<usize> = (0..dag.edge_count()).filter(|&i| s.realized[i]).collect();
        assert_eq!(realized, vec![0, 5], "realized {realized:?}");
    }

    /// Best-intra never fuses: one op per phase.
    #[test]
    fn best_intra_is_op_by_op() {
        let dag = cg_iteration();
        let s = build_schedule(&dag, ScheduleOptions::best_intra());
        assert_eq!(s.phases.len(), dag.node_count());
        assert!(s.realized.iter().all(|&r| !r));
        s.validate(&dag).unwrap();
    }

    /// FLAT on CG degenerates to op-by-op: S and R both have delayed
    /// downstream consumers, so the sole-consumer rule blocks pipelining
    /// (the paper's observation that SET/FLAT/Flexagon tie on CG).
    #[test]
    fn flat_degenerates_on_cg() {
        let dag = cg_iteration();
        let s = build_schedule(&dag, ScheduleOptions::flat());
        assert_eq!(s.phases.len(), dag.node_count());
        assert_eq!(s.binding_of("S"), Binding::Dram);
        assert_eq!(s.binding_of("R"), Binding::Dram);
    }

    /// SET also fails to fuse CG (delayed *writeback*, which holds can't serve).
    #[test]
    fn set_like_degenerates_on_cg() {
        let dag = cg_iteration();
        let s = build_schedule(&dag, ScheduleOptions::set_like());
        assert!(s.realized.iter().all(|&r| !r));
    }

    fn resnet_block() -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 784),
                RankExtent::dense("k", 512),
                RankExtent::dense("n", 128),
            ],
        );
        let t = |n: &str| TensorMeta::dense(n, &["m", "n"], 784 * 128);
        let mut dag = TensorDag::new();
        let inp = dag.add_op("in", spec.clone(), OpKind::TensorMac, t("T0"));
        let c1 = dag.add_op("c1", spec.clone(), OpKind::TensorMac, t("T1"));
        let c2 = dag.add_op("c2", spec.clone(), OpKind::TensorMac, t("T2"));
        let add = dag.add_op("add", spec, OpKind::TensorMac, t("T3"));
        dag.add_edge(inp, c1, &["m", "k"]);
        dag.add_edge(c1, c2, &["m", "k"]);
        dag.add_edge(c2, add, &["m", "k"]);
        dag.add_edge(inp, add, &["m", "k"]); // skip (delayed hold)
        dag
    }

    /// SET and CELLO fuse the whole ResNet block; FLAT cannot (the skip is a
    /// delayed consumer of T0).
    #[test]
    fn resnet_fusion_by_scheduler() {
        let dag = resnet_block();
        let cello = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(cello.phases.len(), 1, "{:?}", cello.phases);
        cello.validate(&dag).unwrap();
        let set = build_schedule(&dag, ScheduleOptions::set_like());
        assert_eq!(set.phases.len(), 1);
        let flat = build_schedule(&dag, ScheduleOptions::flat());
        // FLAT: in -> c1 blocked (T0 has 2 consumers); c1 -> c2 allowed
        // (sole pipelineable consumer); c2 -> add blocked? c2's tensor T2 has
        // sole consumer add: allowed. So clusters: [in], [c1, c2, add]... but
        // add also consumes T0 from `in`, which is in another phase -> fine,
        // it reads T0 from DRAM.
        assert!(flat.phases.len() >= 2);
        flat.validate(&dag).unwrap();
    }

    /// The held tensor (T0) binds to Pipeline under CELLO (all consumers
    /// realized in-cluster).
    #[test]
    fn resnet_skip_binds_to_pipeline() {
        let dag = resnet_block();
        let s = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(s.binding_of("T0"), Binding::Pipeline);
        assert_eq!(s.binding_of("T3"), Binding::Dram); // terminal
    }

    /// Validation catches a broken schedule.
    #[test]
    fn validate_rejects_unrealized_cophase_edges() {
        let dag = resnet_block();
        let mut s = build_schedule(&dag, ScheduleOptions::cello());
        // Corrupt: clear realization flags but keep the fused phase.
        s.realized.iter_mut().for_each(|r| *r = false);
        assert!(s.validate(&dag).is_err());
    }

    /// Pipeline-buffer capacity bounds fusion: below one double-buffered
    /// row no edge realizes at all; the full ResNet block (4 realized
    /// edges x 2 buffers x 128-word rows = 1024 words) only fuses once the
    /// whole cluster's demand fits.
    #[test]
    fn tiny_pipeline_buffer_blocks_fusion() {
        let dag = resnet_block();
        // Below one double-buffered 128-word row: op-by-op, nothing streams.
        let mut opts = ScheduleOptions::cello();
        opts.pipeline_buffer_words = 255;
        let s = build_schedule(&dag, opts);
        assert!(s.realized.iter().all(|&r| !r), "nothing can stream");
        assert_eq!(s.phases.len(), dag.node_count());
        s.validate(&dag).unwrap();
        // One word short of the full cluster demand: partial fusion only.
        opts.pipeline_buffer_words = 1023;
        let partial = build_schedule(&dag, opts);
        assert!(partial.phases.len() > 1, "{:?}", partial.phases);
        partial.validate(&dag).unwrap();
        // At exactly the aggregate demand the whole block fuses.
        opts.pipeline_buffer_words = 1024;
        let full = build_schedule(&dag, opts);
        assert_eq!(full.phases.len(), 1, "{:?}", full.phases);
    }

    /// Empty constraints reproduce the unconstrained schedule exactly.
    #[test]
    fn constraints_none_is_identity() {
        for dag in [cg_iteration(), resnet_block()] {
            let a = build_schedule(&dag, ScheduleOptions::cello());
            let b =
                build_schedule_with(&dag, ScheduleOptions::cello(), &ScheduleConstraints::none());
            assert_eq!(a.phases, b.phases);
            assert_eq!(a.realized, b.realized);
            assert_eq!(a.binding, b.binding);
        }
    }

    /// A cluster cut forces a node out of its Fig 8 cluster and the schedule
    /// stays valid.
    #[test]
    fn cut_splits_cluster() {
        let dag = cg_iteration();
        // Cut before 2a (node 1): the [1, 2a] cluster splits.
        let constraints = ScheduleConstraints {
            cut_before: [1].into_iter().collect(),
            ..Default::default()
        };
        let s = build_schedule_with(&dag, ScheduleOptions::cello(), &constraints);
        let clusters: Vec<Vec<usize>> = s
            .phases
            .iter()
            .map(|p| p.ops.iter().map(|n| n.0).collect())
            .collect();
        assert_eq!(clusters[0], vec![0]);
        assert_eq!(clusters[1], vec![1]);
        s.validate(&dag).unwrap();
    }

    /// Valid binding overrides are honored; invalid ones are dropped.
    #[test]
    fn binding_overrides_validated() {
        let dag = cg_iteration();
        let constraints = ScheduleConstraints {
            binding_overrides: [
                ("S".to_string(), Binding::Dram),         // valid: Chord -> Dram
                ("X".to_string(), Binding::Chord),        // invalid: terminal
                ("D".to_string(), Binding::Dram),         // valid: RF -> Dram
                ("A".to_string(), Binding::Dram),         // valid: external
                ("R".to_string(), Binding::RegisterFile), // invalid: too big
            ]
            .into_iter()
            .collect(),
            ..Default::default()
        };
        let s = build_schedule_with(&dag, ScheduleOptions::cello(), &constraints);
        assert_eq!(s.binding_of("S"), Binding::Dram);
        assert_eq!(s.binding_of("X"), Binding::Dram, "terminal stays DRAM");
        assert_eq!(s.binding_of("D"), Binding::Dram);
        assert_eq!(s.binding_of("A"), Binding::Dram);
        assert_eq!(
            s.binding_of("R"),
            Binding::Chord,
            "oversize RF request dropped"
        );
        s.validate(&dag).unwrap();
    }

    /// CHORD priority biases survive only on CHORD-bound tensors: requests
    /// on RF/DRAM-bound tensors are dropped, and a CHORD-less preset drops
    /// everything.
    #[test]
    fn chord_bias_validated_against_bindings() {
        let dag = cg_iteration();
        let constraints = ScheduleConstraints {
            chord_priority_bias: [
                ("S".to_string(), PriorityBias::Boost(1)), // valid: S is CHORD-bound
                ("R".to_string(), PriorityBias::Demote(2)), // valid
                ("D".to_string(), PriorityBias::Boost(1)), // invalid: RF-bound
                ("X".to_string(), PriorityBias::Boost(1)), // invalid: terminal/DRAM
            ]
            .into_iter()
            .collect(),
            ..Default::default()
        };
        let s = build_schedule_with(&dag, ScheduleOptions::cello(), &constraints);
        assert_eq!(s.chord_bias.get("S"), Some(&PriorityBias::Boost(1)));
        assert_eq!(s.chord_bias.get("R"), Some(&PriorityBias::Demote(2)));
        assert!(!s.chord_bias.contains_key("D"));
        assert!(!s.chord_bias.contains_key("X"));
        // No CHORD, no bias.
        let oracle = build_schedule_with(&dag, ScheduleOptions::best_intra(), &constraints);
        assert!(oracle.chord_bias.is_empty());
    }

    /// A rank partition along the dominant rank keeps the Fig 8 clusters:
    /// both CG producers (ops 1 and 4) stream m outermost, so realization is
    /// untouched, and the normalized partition lands in the schedule.
    #[test]
    fn rank_partition_on_dominant_rank_keeps_pipelining() {
        use cello_tensor::shape::RankId;
        let dag = cg_iteration();
        let partition = Partition::by_rank(16, RankId::new("m"));
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints::partitioned(partition),
        );
        assert_eq!(s.partition, partition);
        let realized: Vec<usize> = (0..dag.edge_count()).filter(|&i| s.realized[i]).collect();
        assert_eq!(realized, vec![0, 5], "same as the single-node schedule");
        s.validate(&dag).unwrap();
    }

    /// Partitioning along a non-dominant rank de-realizes every pipeline
    /// (producers stream m outermost, not n), splitting the clusters — the
    /// §V-B "only dominant-rank parallelization keeps pipelining
    /// intra-node" rule, surfaced as schedule cost instead of a panic.
    #[test]
    fn rank_partition_on_minor_rank_blocks_pipelining() {
        use cello_tensor::shape::RankId;
        let dag = cg_iteration();
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints::partitioned(Partition::by_rank(16, RankId::new("n"))),
        );
        assert!(s.realized.iter().all(|&r| !r), "no cross-node pipelines");
        // Multicast co-scheduling (no streamed edge) may still fuse ops, but
        // every *streaming* cluster must have split.
        assert!(s.phases.len() > build_schedule(&dag, ScheduleOptions::cello()).phases.len());
        s.validate(&dag).unwrap();
    }

    /// Stage partitioning (the naive strategy) keeps pipelining realized —
    /// the simulator charges the NoC cost instead.
    #[test]
    fn stage_partition_keeps_pipelining() {
        let dag = cg_iteration();
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints::partitioned(Partition::by_stage(16)),
        );
        let realized: Vec<usize> = (0..dag.edge_count()).filter(|&i| s.realized[i]).collect();
        assert_eq!(realized, vec![0, 5]);
        assert_eq!(s.partition, Partition::by_stage(16));
        s.validate(&dag).unwrap();
    }

    /// Invalid partition requests degrade to single-node: unknown ranks and
    /// degenerate node counts are dropped, not errors.
    #[test]
    fn bogus_partitions_degrade_to_single_node() {
        use cello_tensor::shape::RankId;
        let dag = cg_iteration();
        for req in [
            Partition::by_rank(8, RankId::new("zz")), // unknown rank
            Partition::by_rank(1, RankId::new("m")),  // 1 node
            Partition::by_stage(0),                   // 0 nodes
        ] {
            let s = build_schedule_with(
                &dag,
                ScheduleOptions::cello(),
                &ScheduleConstraints::partitioned(req),
            );
            assert_eq!(s.partition, Partition::single(), "{req:?}");
        }
        // And no partition at all is the same thing.
        let s = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(s.partition, Partition::single());
    }

    /// `validate` rejects a hand-corrupted schedule that realizes an edge
    /// whose producer does not stream the sliced rank outermost.
    #[test]
    fn validate_rejects_cross_node_pipelines() {
        use cello_tensor::shape::RankId;
        let dag = cg_iteration();
        let mut s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints::partitioned(Partition::by_rank(4, RankId::new("m"))),
        );
        s.validate(&dag).unwrap();
        // Corrupt: claim slicing along n while producers stream m.
        s.partition = Partition::by_rank(4, RankId::new("n"));
        assert!(s.validate(&dag).is_err());
    }

    /// Without a repartition every phase carries the global split, the
    /// schedule reports no repartition activity, and `phase_split` falls
    /// back to the global split past the end (the drain pseudo-phase).
    #[test]
    fn default_phase_splits_are_global() {
        let dag = cg_iteration();
        let s = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(s.phase_splits.len(), s.phases.len());
        let global = PhaseSplit::of_options(&s.options);
        assert!(s.phase_splits.iter().all(|sp| *sp == global));
        assert!(!s.repartition_active());
        assert_eq!(s.phase_split(s.phases.len() + 5), global);
        s.validate(&dag).unwrap();
    }

    /// A uniform repartition (every phase = the global split) builds the
    /// *identical* schedule: same phases, same bindings, same splits — the
    /// differential baseline the proptests pin end to end.
    #[test]
    fn uniform_repartition_is_identity() {
        let dag = cg_iteration();
        let opts = ScheduleOptions::cello();
        let plain = build_schedule(&dag, opts);
        let global = PhaseSplit::of_options(&opts);
        let rep =
            crate::score::repartition::PhaseRepartition::by_kind(1 << 20, global, global).unwrap();
        let uniform = build_schedule_with(
            &dag,
            opts,
            &ScheduleConstraints {
                phase_repartition: Some(rep),
                ..Default::default()
            },
        );
        assert_eq!(plain.phases, uniform.phases);
        assert_eq!(plain.realized, uniform.realized);
        assert_eq!(plain.binding, uniform.binding);
        assert_eq!(plain.phase_splits, uniform.phase_splits);
        assert!(!uniform.repartition_active());
    }

    /// A kind profile lands fused splits on multi-op clusters and solo
    /// splits on the rest, and a fused split too small to stream blocks
    /// fusion exactly as a small global buffer would.
    #[test]
    fn kind_profile_resolves_by_cluster_size() {
        use crate::score::repartition::PhaseRepartition;
        let dag = resnet_block();
        let fused = PhaseSplit::new(65_536, 16_384);
        let solo = PhaseSplit::new(1024, 4096);
        let constraints = ScheduleConstraints {
            phase_repartition: Some(PhaseRepartition::by_kind(1 << 20, fused, solo).unwrap()),
            cut_before: [3].into_iter().collect(), // keep `add` solo
            ..Default::default()
        };
        let s = build_schedule_with(&dag, ScheduleOptions::cello(), &constraints);
        assert!(s.phases.len() >= 2);
        for (pi, p) in s.phases.iter().enumerate() {
            let expect = if p.ops.len() > 1 { fused } else { solo };
            assert_eq!(s.phase_splits[pi], expect, "phase {pi}");
        }
        assert!(s.repartition_active());
        s.validate(&dag).unwrap();

        // A fused split below one double-buffered row blocks fusion: the
        // repartition is a real schedule decision, not post-hoc bookkeeping.
        let starved = ScheduleConstraints {
            phase_repartition: Some(
                PhaseRepartition::by_kind(1 << 20, PhaseSplit::new(255, 16_384), solo).unwrap(),
            ),
            ..Default::default()
        };
        let s2 = build_schedule_with(&dag, ScheduleOptions::cello(), &starved);
        assert!(s2.realized.iter().all(|&r| !r), "nothing can stream");
        assert_eq!(s2.phases.len(), dag.node_count());
        s2.validate(&dag).unwrap();
    }

    /// An overcommitted per-phase split (`pipeline + rf > sram`) hand-built
    /// through the public fields is dropped by the builder — the global
    /// split applies — while the validated constructors reject it upfront.
    #[test]
    fn overcommitted_phase_split_is_dropped() {
        use crate::score::repartition::{PhaseRepartition, PhaseSplits};
        let dag = cg_iteration();
        let sram = 1u64 << 20;
        let bad = PhaseSplit::new(sram, sram);
        assert!(PhaseRepartition::by_index(sram, [(0, bad)].into_iter().collect()).is_err());
        let rep = PhaseRepartition {
            sram_words: sram,
            splits: PhaseSplits::ByIndex([(0usize, bad)].into_iter().collect()),
        };
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints {
                phase_repartition: Some(rep),
                ..Default::default()
            },
        );
        let global = PhaseSplit::of_options(&s.options);
        assert_eq!(s.phase_splits[0], global, "degenerate split dropped");
        assert!(!s.repartition_active());
    }

    /// Per-phase RF capacity feeds bindings: a tensor is RF-bound only when
    /// it fits the RF in *every* phase it is live in (min over producing and
    /// consuming phases), so shrinking one phase's RF re-steers the Greek
    /// tensors that cross it.
    #[test]
    fn per_phase_rf_rebinds_small_tensors() {
        use crate::score::repartition::PhaseRepartition;
        let dag = cg_iteration();
        let plain = build_schedule(&dag, ScheduleOptions::cello());
        assert_eq!(plain.binding_of("D"), Binding::RegisterFile);
        // D (N×N = 256 words) is produced in phase 0 and consumed in phase
        // 1 (op 2b). Starve phase 1's RF below 256 words: D must leave the
        // RF even though phase 0 could hold it.
        let rep = PhaseRepartition::by_index(
            1 << 20,
            [(1usize, PhaseSplit::new(65_536, 128))]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints {
                phase_repartition: Some(rep),
                ..Default::default()
            },
        );
        assert_ne!(s.binding_of("D"), Binding::RegisterFile);
        // Tensors that never touch phase 1 keep their RF binding.
        assert_eq!(s.binding_of("G"), Binding::RegisterFile);
        s.validate(&dag).unwrap();
    }

    /// Effective RF capacity is the min over the tensor's whole live range,
    /// not just its endpoint phases: a tensor parked in the RF *across* an
    /// RF-starved intermediate phase would silently overcommit that phase's
    /// SRAM (CHORD already owns the starved split's remainder there).
    #[test]
    fn rf_capacity_min_over_live_range() {
        use crate::score::repartition::PhaseRepartition;
        let mut dag = TensorDag::new();
        let a = dag.add_op("a", small_spec(), OpKind::TensorMac, small("s"));
        let _b = dag.add_op("b", small_spec(), OpKind::TensorMac, big("u"));
        let c = dag.add_op("c", small_spec(), OpKind::TensorMac, small("w"));
        dag.add_edge(a, c, &["p", "j"]); // s skips over b's phase
        let cuts: BTreeSet<usize> = [1, 2].into_iter().collect();
        let plain = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints {
                cut_before: cuts.clone(),
                ..Default::default()
            },
        );
        assert_eq!(plain.phases.len(), 3);
        assert_eq!(plain.binding_of("s"), Binding::RegisterFile);
        // Starve only the *intermediate* phase's RF below s's 256 words:
        // the endpoints alone would still admit s, the live range must not.
        let rep = PhaseRepartition::by_index(
            1 << 20,
            [(1usize, PhaseSplit::new(65_536, 128))]
                .into_iter()
                .collect(),
        )
        .unwrap();
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints {
                cut_before: cuts,
                phase_repartition: Some(rep),
                ..Default::default()
            },
        );
        assert_ne!(s.binding_of("s"), Binding::RegisterFile);
        s.validate(&dag).unwrap();
    }

    /// A loop-order override that breaks the §V-B co-dependence conditions
    /// de-realizes the downstream pipelining (the cluster split follows).
    #[test]
    fn loop_order_override_blocks_pipelining() {
        use cello_tensor::shape::RankId;
        let dag = cg_iteration();
        // Node 0 (op 1) canonically runs m-outermost (uncontracted), which
        // enables the 1 -> 2a pipeline. Forcing k outermost (contracted)
        // violates condition 2, so the [1, 2a] cluster cannot form.
        let forced = crate::score::loop_order::LoopOrder {
            order: vec![RankId::new("k"), RankId::new("m"), RankId::new("n")],
        };
        let constraints = ScheduleConstraints {
            loop_orders: [(0usize, forced)].into_iter().collect(),
            ..Default::default()
        };
        let s = build_schedule_with(&dag, ScheduleOptions::cello(), &constraints);
        assert!(!s.realized[0], "1 -> 2a must not realize under k-outermost");
        s.validate(&dag).unwrap();
        // A non-permutation override is ignored.
        let bogus = ScheduleConstraints {
            loop_orders: [(
                0usize,
                crate::score::loop_order::LoopOrder {
                    order: vec![RankId::new("z")],
                },
            )]
            .into_iter()
            .collect(),
            ..Default::default()
        };
        let s2 = build_schedule_with(&dag, ScheduleOptions::cello(), &bogus);
        assert!(s2.realized[0], "bogus override ignored, pipeline intact");
    }
}

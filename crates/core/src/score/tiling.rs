//! Tile sizing (§V-B "Tiling" and "Handling sparsity").
//!
//! SCORE's tiling is deliberately simple — the whole point of CHORD is that
//! fine-grained buffer allocation is *not* searched:
//!
//! - the **small tensor** of a skewed GEMM lives entirely in the register
//!   file and streams from there ("they do not require scheduling search,
//!   since we fix the mapping");
//! - the **large tensor** is stationary per tile, tiled along the dominant
//!   rank so a producer tile + consumer tile double-buffer in the pipeline
//!   buffer;
//! - the **sparse tensor** is tiled by *occupancy*: rows per tile chosen so
//!   the CSR payload (values + column indices + row pointers) fits.

use serde::{Deserialize, Serialize};

/// A tile decision for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileChoice {
    /// Rows of the dominant rank per tile (`M0` in the paper's loop nests).
    pub tile_rows: u64,
    /// Words per tile.
    pub tile_words: u64,
    /// Number of tiles covering the dominant extent.
    pub tiles: u64,
}

/// Tiles the dominant rank so that `stages` tiles double-buffer within
/// `pipeline_capacity_words` (each stage holds one in-flight tile plus one
/// being filled).
///
/// `row_words` is the footprint of a single dominant-rank row (e.g. `N` words
/// for an `M×N` tensor).
pub fn tile_for_pipeline(
    dominant_extent: u64,
    row_words: u64,
    pipeline_capacity_words: u64,
    stages: u64,
) -> TileChoice {
    assert!(row_words > 0 && stages > 0);
    let budget_per_stage = pipeline_capacity_words / (stages * 2); // double buffer
    let tile_rows = (budget_per_stage / row_words).clamp(1, dominant_extent.max(1));
    TileChoice {
        tile_rows,
        tile_words: tile_rows * row_words,
        tiles: dominant_extent.div_ceil(tile_rows),
    }
}

/// Occupancy-based sparse tiling: rows per tile such that the CSR payload
/// (`2·nnz_per_row` words for values+indices, +1 word per row pointer) fits
/// within `capacity_words`.
pub fn sparse_tile_rows(occupancy: f64, capacity_words: u64) -> u64 {
    assert!(occupancy >= 0.0);
    let words_per_row = 2.0 * occupancy + 1.0;
    ((capacity_words as f64 / words_per_row).floor() as u64).max(1)
}

/// Whether a tensor fits entirely in the register file — the small Greek
/// tensors of CG (`Δ`, `Λ`, `Γ`, `Φ`, all `N×N'`) do.
pub fn rf_fits(words: u64, rf_capacity_words: u64) -> bool {
    words <= rf_capacity_words
}

/// Whether a pipelined producer→consumer stream is *feasible* in a pipeline
/// buffer of `pipeline_capacity_words`: each of the `stages` stages must
/// double-buffer at least one dominant-rank row (`row_words`), i.e.
/// [`tile_for_pipeline`] must be able to pick `tile_rows >= 1` without
/// overflowing its per-stage budget. Below this floor the edge cannot be
/// realized as on-chip pipelining at all — which is what makes the pipeline
/// buffer size a real knob for the DSE engine rather than free SRAM.
pub fn pipeline_can_stream(row_words: u64, pipeline_capacity_words: u64, stages: u64) -> bool {
    assert!(stages > 0);
    pipeline_capacity_words / (stages * 2) >= row_words.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_double_buffers() {
        // 64K-word pipeline buffer, 2 stages, 16-word rows:
        // per stage budget 16K words -> 1024 rows/tile.
        let t = tile_for_pipeline(81_920, 16, 65_536, 2);
        assert_eq!(t.tile_rows, 1024);
        assert_eq!(t.tile_words, 16_384);
        assert_eq!(t.tiles, 80);
    }

    #[test]
    fn tile_clamps_to_extent() {
        let t = tile_for_pipeline(100, 4, 1 << 20, 1);
        assert_eq!(t.tile_rows, 100);
        assert_eq!(t.tiles, 1);
    }

    #[test]
    fn tile_never_zero_rows() {
        // Pathologically wide rows still make progress one row at a time.
        let t = tile_for_pipeline(1000, 1 << 20, 1024, 2);
        assert_eq!(t.tile_rows, 1);
        assert_eq!(t.tiles, 1000);
    }

    #[test]
    fn tiles_cover_extent() {
        for extent in [1u64, 7, 100, 81_920] {
            for cap in [256u64, 4096, 1 << 16] {
                let t = tile_for_pipeline(extent, 16, cap, 2);
                assert!(t.tile_rows * t.tiles >= extent, "{t:?} vs {extent}");
                assert!(t.tile_rows * (t.tiles - 1) < extent, "{t:?} over-covers");
            }
        }
    }

    #[test]
    fn sparse_tiling_respects_occupancy() {
        // occupancy 4 nnz/row -> 9 words per row -> 1000-word tile = 111 rows.
        assert_eq!(sparse_tile_rows(4.0, 1000), 111);
        // Denser matrix, fewer rows per tile.
        assert!(sparse_tile_rows(50.0, 1000) < sparse_tile_rows(4.0, 1000));
        assert_eq!(sparse_tile_rows(1000.0, 10), 1);
    }

    #[test]
    fn pipeline_stream_floor() {
        // 16-word rows, 2 stages, double-buffered: needs >= 64 words.
        assert!(pipeline_can_stream(16, 64, 2));
        assert!(!pipeline_can_stream(16, 63, 2));
        // The paper's 64K-word buffer streams even 16K-word rows.
        assert!(pipeline_can_stream(16_384, 65_536, 2));
        assert!(!pipeline_can_stream(16_385, 65_536, 2));
    }

    #[test]
    fn rf_thresholds() {
        // CG's Greek tensors: N=16 -> 256 words, fits a 16K-word RF.
        assert!(rf_fits(256, 16_384));
        // P (81920 x 16) does not.
        assert!(!rf_fits(81_920 * 16, 16_384));
    }
}

//! Accelerator configuration (paper Table V).
//!
//! | parameter | value |
//! |---|---|
//! | SRAM size | 4 MB (swept 1–16 MB in §VII-C2) |
//! | MAC units | 16384 |
//! | cache line | 16 B |
//! | associativity | 8-way |
//! | memory bandwidth | 250 GB/s or 1 TB/s |
//! | clock | 1 GHz |
//! | RIFF index table | 64 entries × 512 bits |

use crate::chord::{ChordConfig, ChordPolicyKind};
use cello_mem::cache::CacheConfig;
use cello_mem::dram::DramModel;
use cello_tensor::intensity::Roofline;
use serde::{Deserialize, Serialize};

/// Full accelerator configuration shared by every Table IV combination.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CelloConfig {
    /// Number of MAC units (16384).
    pub pe_count: u64,
    /// Core clock in Hz (1 GHz).
    pub freq_hz: f64,
    /// On-chip SRAM capacity in bytes (4 MB default).
    pub sram_bytes: u64,
    /// Word size in bytes (4 for CG/GNN, 2 for ResNet — Table VII).
    pub word_bytes: u32,
    /// Off-chip interface.
    pub dram: DramModel,
    /// Register-file capacity in words (small-tensor threshold, §V-B).
    pub rf_capacity_words: u64,
    /// Pipeline-buffer capacity in words.
    pub pipeline_buffer_words: u64,
    /// RIFF-index-table entries.
    pub riff_entries: usize,
    /// Per-link NoC bandwidth in bytes/s (multi-node runs, §V-B).
    pub noc_bandwidth_bytes_per_sec: f64,
    /// Words of SRAM one unit of prefetch depth stages (doubled when the
    /// staging region is double-buffered). A schedule's
    /// `TransferTuning::staging_words` carve — subtracted from CHORD's
    /// capacity — is `depth × this × banks`; depth 0 carves nothing.
    pub staging_quantum_words: u64,
}

impl CelloConfig {
    /// The paper's Table V configuration at 1 TB/s, 32-bit words.
    pub fn paper() -> Self {
        Self {
            pe_count: 16_384,
            freq_hz: 1.0e9,
            sram_bytes: 4 << 20,
            word_bytes: 4,
            dram: DramModel::one_tb_per_sec(),
            rf_capacity_words: 16_384,
            pipeline_buffer_words: 65_536,
            riff_entries: 64,
            noc_bandwidth_bytes_per_sec: 256.0e9,
            staging_quantum_words: 4096,
        }
    }

    /// Same with 250 GB/s DRAM.
    pub fn paper_250gbs() -> Self {
        Self {
            dram: DramModel::gb250_per_sec(),
            ..Self::paper()
        }
    }

    /// Variant with a different SRAM size (the §VII-C2 sweep).
    pub fn with_sram_bytes(mut self, bytes: u64) -> Self {
        self.sram_bytes = bytes;
        self
    }

    /// Variant with a different word size (ResNet uses 2 B).
    pub fn with_word_bytes(mut self, word_bytes: u32) -> Self {
        self.word_bytes = word_bytes;
        self
    }

    /// SRAM capacity in words.
    pub fn sram_words(&self) -> u64 {
        self.sram_bytes / self.word_bytes as u64
    }

    /// Peak MAC throughput in ops/second.
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.pe_count as f64 * self.freq_hz
    }

    /// The machine's roofline.
    pub fn roofline(&self) -> Roofline {
        Roofline {
            peak_ops_per_sec: self.peak_macs_per_sec(),
            bytes_per_sec: self.dram.bandwidth_bytes_per_sec,
        }
    }

    /// CHORD configured over this SRAM (full PRELUDE+RIFF).
    pub fn chord_config(&self) -> ChordConfig {
        ChordConfig {
            capacity_words: self.sram_words(),
            word_bytes: self.word_bytes,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: self.riff_entries,
        }
    }

    /// PRELUDE-only CHORD (the §VII-C3 ablation).
    pub fn prelude_only_config(&self) -> ChordConfig {
        ChordConfig {
            policy: ChordPolicyKind::PreludeOnly,
            ..self.chord_config()
        }
    }

    /// Canonical one-line serialization of every field that can change an
    /// evaluation result — one ingredient of the workload fingerprint
    /// (`cello_search::fingerprint`). Stable across runs and processes:
    /// fields are listed in declaration order with explicit names, floats
    /// print with full round-trip precision, and nothing derived (rooflines,
    /// CHORD configs) is included — only the inputs they derive from.
    pub fn canonical_text(&self) -> String {
        format!(
            "accel{{pe={} freq={:?} sram={} word={} dram_bw={:?} dram_pj={:?} rf={} pb={} riff={} noc_bw={:?} stage_q={}}}",
            self.pe_count,
            self.freq_hz,
            self.sram_bytes,
            self.word_bytes,
            self.dram.bandwidth_bytes_per_sec,
            self.dram.energy_pj_per_byte,
            self.rf_capacity_words,
            self.pipeline_buffer_words,
            self.riff_entries,
            self.noc_bandwidth_bytes_per_sec,
            self.staging_quantum_words,
        )
    }

    /// The Table V cache over the same SRAM.
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            capacity_bytes: self.sram_bytes,
            line_bytes: 16,
            associativity: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_values() {
        let c = CelloConfig::paper();
        assert_eq!(c.pe_count, 16_384);
        assert_eq!(c.sram_bytes, 4 << 20);
        assert_eq!(c.sram_words(), 1 << 20);
        assert_eq!(c.peak_macs_per_sec(), 16.384e12);
        assert_eq!(c.riff_entries, 64);
    }

    /// The canonical text distinguishes every evaluation-relevant field and
    /// is bit-stable for equal configs (the fingerprint contract).
    #[test]
    fn canonical_text_distinguishes_configs() {
        let base = CelloConfig::paper();
        assert_eq!(base.canonical_text(), CelloConfig::paper().canonical_text());
        let variants = [
            base.with_sram_bytes(8 << 20),
            base.with_word_bytes(2),
            CelloConfig::paper_250gbs(),
            CelloConfig {
                rf_capacity_words: base.rf_capacity_words + 1,
                ..base
            },
            CelloConfig {
                noc_bandwidth_bytes_per_sec: 1.0e9,
                ..base
            },
            CelloConfig {
                staging_quantum_words: base.staging_quantum_words * 2,
                ..base
            },
        ];
        for v in &variants {
            assert_ne!(base.canonical_text(), v.canonical_text(), "{v:?}");
        }
    }

    #[test]
    fn roofline_ridge_matches_section_7c1() {
        assert!((CelloConfig::paper().roofline().ridge_point() - 16.384).abs() < 1e-9);
        assert!((CelloConfig::paper_250gbs().roofline().ridge_point() - 65.536).abs() < 1e-9);
    }

    #[test]
    fn chord_config_derivation() {
        let c = CelloConfig::paper().chord_config();
        assert_eq!(c.capacity_words, 1 << 20);
        assert_eq!(c.policy, ChordPolicyKind::PreludeRiff);
        let p = CelloConfig::paper().prelude_only_config();
        assert_eq!(p.policy, ChordPolicyKind::PreludeOnly);
    }

    #[test]
    fn word_size_variants() {
        let c = CelloConfig::paper().with_word_bytes(2);
        assert_eq!(c.sram_words(), 2 << 20);
        let s = CelloConfig::paper().with_sram_bytes(16 << 20);
        assert_eq!(s.sram_words(), 4 << 20);
    }

    #[test]
    fn cache_config_matches_table5() {
        let cc = CelloConfig::paper().cache_config();
        assert_eq!(cc.line_bytes, 16);
        assert_eq!(cc.associativity, 8);
        assert_eq!(cc.capacity_bytes, 4 << 20);
    }
}

//! Operation nodes and node dominance.
//!
//! Algorithm 2 speaks about nodes through two attributes:
//!
//! - **op kind** — only `tensor_mac` operations participate in pipelining
//!   (`if node.op ≠ tensor_mac: edge.dependency = sequential`); CG's tiny
//!   matrix inversions (`Λ = Δ⁻¹Γ`) are not MAC pipelines;
//! - **dominance** — whether the node's dominant (largest *effective*) rank is
//!   contracted ('C'), uncontracted ('U'), or whether all ranks are comparable
//!   ("bal", Fig 7). Contraction-dominant producers never pipeline: the bulk
//!   of their compute only *produces* the output (Challenge 2, §III-B).

use crate::edge::TensorMeta;
use cello_tensor::einsum::{EinsumSpec, RankKind};
use cello_tensor::shape::SkewClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the node computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// A multiply-accumulate einsum (GEMM / SpMM / tensor contraction).
    TensorMac,
    /// A small dense inverse (CG lines 2b and 6). Not a MAC pipeline.
    Inverse,
    /// Elementwise add/sub fused with a MAC (still MAC-like for scheduling).
    Elementwise,
}

/// Node dominance as drawn in Fig 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dominance {
    /// The dominant rank is uncontracted ('U') — candidate pipeline producer.
    Uncontracted,
    /// The dominant rank is contracted ('C') — contraction heavy, never
    /// pipelines with its consumer.
    Contracted,
    /// All ranks are big/comparable ("bal") — the DNN regime.
    Balanced,
}

impl fmt::Display for Dominance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dominance::Uncontracted => "U",
            Dominance::Contracted => "C",
            Dominance::Balanced => "bal",
        })
    }
}

/// Minimum effective extent for a rank to count as "big": when *every* rank
/// clears this, the node is "bal" regardless of aspect ratio. This captures
/// Fig 7's ResNet labels — conv2 contracts over K=1152 vs M=784 outputs, yet
/// the paper calls it balanced because no rank is register-file small and the
/// output is produced at a pipeline-friendly rate.
pub const BALANCED_MIN_EXTENT: u64 = 64;

/// Computes dominance from an einsum spec. `skew_threshold` separates
/// "one rank dwarfs the rest" from "all ranks big" (default 4.0 in SCORE);
/// nodes whose every effective extent reaches [`BALANCED_MIN_EXTENT`] are
/// balanced irrespective of the ratio.
pub fn dominance_of(spec: &EinsumSpec, skew_threshold: f64) -> Dominance {
    let all_big = spec
        .extents()
        .iter()
        .all(|r| r.effective >= BALANCED_MIN_EXTENT);
    if all_big || spec.skew(skew_threshold) == SkewClass::Balanced {
        return Dominance::Balanced;
    }
    match spec.rank_kind(spec.dominant().rank) {
        RankKind::Contracted => Dominance::Contracted,
        RankKind::Uncontracted => Dominance::Uncontracted,
    }
}

/// An operation node of the tensor dependency DAG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpNode {
    /// Short label, e.g. `"1: S=A·P"` (Algorithm 1 line numbers).
    pub name: String,
    /// The einsum this node computes.
    pub spec: EinsumSpec,
    /// MAC vs inverse vs elementwise.
    pub kind: OpKind,
    /// Cached dominance (computed at insertion with the DAG's skew threshold).
    pub dominance: Dominance,
    /// MACs performed (effective, i.e. sparsity-aware).
    pub macs: u64,
    /// The tensor this node produces.
    pub output: TensorMeta,
}

impl OpNode {
    /// Builds a node, computing dominance and MACs from the spec.
    pub fn new(
        name: impl Into<String>,
        spec: EinsumSpec,
        kind: OpKind,
        output: TensorMeta,
        skew_threshold: f64,
    ) -> Self {
        let dominance = dominance_of(&spec, skew_threshold);
        let macs = spec.macs();
        Self {
            name: name.into(),
            spec,
            kind,
            dominance,
            macs,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_tensor::shape::RankExtent;

    fn spec(m: u64, k: u64, n: u64) -> EinsumSpec {
        EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", m),
                RankExtent::dense("k", k),
                RankExtent::dense("n", n),
            ],
        )
    }

    #[test]
    fn uncontracted_dominant_node() {
        // CG line 3/4/7 shape: M x J x N with M huge.
        assert_eq!(
            dominance_of(&spec(81_920, 16, 16), 4.0),
            Dominance::Uncontracted
        );
    }

    #[test]
    fn contracted_dominant_node() {
        // CG line 2a/5 shape: contraction over huge k.
        let s = EinsumSpec::parse(
            "kp,kn->pn",
            &[
                RankExtent::dense("k", 81_920),
                RankExtent::dense("p", 16),
                RankExtent::dense("n", 16),
            ],
        );
        assert_eq!(dominance_of(&s, 4.0), Dominance::Contracted);
    }

    #[test]
    fn balanced_node() {
        assert_eq!(dominance_of(&spec(512, 512, 512), 4.0), Dominance::Balanced);
        // ResNet GEMM-lowered convs: every rank ≥ 64 ⇒ "bal" (Fig 7), even
        // conv2 whose contraction K=1152 exceeds M=784.
        assert_eq!(dominance_of(&spec(784, 512, 128), 4.0), Dominance::Balanced);
        assert_eq!(
            dominance_of(&spec(784, 1152, 128), 4.0),
            Dominance::Balanced
        );
        // A rank below the threshold re-enables skew classification.
        assert_eq!(
            dominance_of(&spec(784, 1152, 16), 4.0),
            Dominance::Contracted
        );
    }

    #[test]
    fn sparse_spmm_is_uncontracted_dominant() {
        // SpMM: contracted k compressed to occupancy 4 -> m dominates (Fig 7
        // caption: "the first operation is 'U' because the contracted rank is
        // compressed").
        let s = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 81_920),
                RankExtent::compressed("k", 81_920, 4),
                RankExtent::dense("n", 16),
            ],
        );
        assert_eq!(dominance_of(&s, 4.0), Dominance::Uncontracted);
    }

    #[test]
    fn node_caches_macs() {
        let out = TensorMeta::dense("Z", &["m", "n"], 800);
        let n = OpNode::new("op", spec(100, 8, 8), OpKind::TensorMac, out, 4.0);
        assert_eq!(n.macs, 100 * 8 * 8);
        assert_eq!(n.dominance, Dominance::Uncontracted);
        assert_eq!(n.output.name, "Z");
    }

    #[test]
    fn dominance_display() {
        assert_eq!(Dominance::Uncontracted.to_string(), "U");
        assert_eq!(Dominance::Contracted.to_string(), "C");
        assert_eq!(Dominance::Balanced.to_string(), "bal");
    }
}

//! # cello-graph — tensor-dependency DAG IR
//!
//! Tensor-algebra applications are "chains of Einsums" whose intermediate
//! tensors form a *tensor dependency graph* (paper §III-A, Fig 1). This crate
//! is the IR those applications are lowered to and the substrate SCORE's
//! Algorithm 2 runs on:
//!
//! - [`node`]: operation nodes — einsum spec, op kind (`tensor_mac` vs the
//!   small inverse ops Algorithm 2 forces sequential), node *dominance*
//!   ('U'/'C'/"bal" in Fig 7);
//! - [`edge`]: producer→consumer edges carrying the intermediate tensor, with
//!   the rank names the consumer sees (needed for the "unshared" test);
//! - [`dag`]: the graph itself — topological order, reachability, **transitive
//!   edge** detection and **longest paths** (both load-bearing in Algorithm 2);
//! - [`reuse`]: tensor-level reuse distance and frequency — the coarse-grained
//!   metadata SCORE hands to CHORD's RIFF policy (Fig 10's `Freq`/`Dist`
//!   columns);
//! - [`dot`]: Graphviz rendering used by the Fig 7 harness.

pub mod dag;
pub mod dot;
pub mod edge;
pub mod metrics;
pub mod node;
pub mod reuse;

pub use dag::{EdgeId, NodeId, TensorDag};
pub use edge::{Edge, TensorMeta};
pub use metrics::{metrics, DagMetrics};
pub use node::{Dominance, OpKind, OpNode};
pub use reuse::{ReuseProfile, TensorReuse};

//! The tensor dependency DAG: topology queries Algorithm 2 depends on.
//!
//! Two graph-theoretic notions carry the paper's scheduling logic:
//!
//! - a **transitive edge** (footnote 5): an edge `u→v` that is *not* on the
//!   longest path between `u` and `v` — i.e. some other path `u→…→v` of
//!   length ≥ 2 exists. Transitive edges are exactly the *delayed downstream
//!   dependencies* (Challenge 1) that pipelining cannot serve;
//! - the **longest path** between the endpoints of a transitive edge: if any
//!   interior node on it is contraction-dominant (or breaks rank sharing),
//!   the delayed consumer cannot be served by holding tiles in the pipeline
//!   buffer, and the edge becomes `Delayed_writeback` (Algorithm 2).

use crate::edge::{Edge, ExternalInput, TensorMeta};
use crate::node::{OpKind, OpNode};
use cello_tensor::einsum::EinsumSpec;
use cello_tensor::shape::RankId;
use serde::{Deserialize, Serialize};

/// Index of a node within its DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of an edge within its DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

/// A DAG of tensor operations (paper Fig 1).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TensorDag {
    nodes: Vec<OpNode>,
    edges: Vec<Edge>,
    externals: Vec<ExternalInput>,
    /// Skew threshold used for node dominance (SCORE default 4.0).
    pub skew_threshold: f64,
}

impl TensorDag {
    /// Empty DAG with the default skew threshold.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            edges: Vec::new(),
            externals: Vec::new(),
            skew_threshold: 4.0,
        }
    }

    /// Adds an operation node; returns its id.
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        spec: EinsumSpec,
        kind: OpKind,
        output: TensorMeta,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes
            .push(OpNode::new(name, spec, kind, output, self.skew_threshold));
        id
    }

    /// Adds a producer→consumer edge; `dst` must be a later node than `src`
    /// (nodes are inserted in a topological order by construction).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, dst_ranks: &[&str]) -> EdgeId {
        assert!(src.0 < self.nodes.len() && dst.0 < self.nodes.len());
        assert!(
            src.0 < dst.0,
            "edges must go forward in insertion order ({} -> {})",
            src.0,
            dst.0
        );
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge::new(src.0, dst.0, dst_ranks));
        id
    }

    /// Adds a pre-built edge (for layout-annotated edges).
    pub fn add_edge_full(&mut self, edge: Edge) -> EdgeId {
        assert!(edge.src < edge.dst, "edges must go forward");
        assert!(edge.dst < self.nodes.len());
        let id = EdgeId(self.edges.len());
        self.edges.push(edge);
        id
    }

    /// Registers an external DRAM-resident input tensor and its consumers.
    pub fn add_external(&mut self, meta: TensorMeta, consumers: &[(NodeId, &[&str])]) {
        self.externals.push(ExternalInput {
            meta,
            consumers: consumers
                .iter()
                .map(|(n, ranks)| (n.0, ranks.iter().map(|r| RankId::new(r)).collect()))
                .collect(),
        });
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &OpNode {
        &self.nodes[id.0]
    }

    /// Edge accessor.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &OpNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// External inputs.
    pub fn externals(&self) -> &[ExternalInput] {
        &self.externals
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, n: NodeId) -> Vec<EdgeId> {
        self.edges()
            .filter(|(_, e)| e.src == n.0)
            .map(|(id, _)| id)
            .collect()
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, n: NodeId) -> Vec<EdgeId> {
        self.edges()
            .filter(|(_, e)| e.dst == n.0)
            .map(|(id, _)| id)
            .collect()
    }

    /// Topological order. Nodes are inserted topologically (enforced by
    /// `add_edge`), so this is just insertion order — kept as a method so the
    /// invariant is assertable.
    pub fn topo_order(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId).collect()
    }

    /// Whether a path `from → … → to` exists (including the trivial length-1
    /// edge). `from == to` counts as reachable only via an actual cycle, which
    /// cannot exist here, so it returns `false` for distinct-free self queries.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return false;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from.0];
        while let Some(u) = stack.pop() {
            for e in &self.edges {
                if e.src == u {
                    if e.dst == to.0 {
                        return true;
                    }
                    if !seen[e.dst] {
                        seen[e.dst] = true;
                        stack.push(e.dst);
                    }
                }
            }
        }
        false
    }

    /// Longest path length (in edges) from `from` to `to`, or `None` if
    /// unreachable. O(V+E) DP over the topological order.
    pub fn longest_path_len(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.longest_path(from, to).map(|p| p.len() - 1)
    }

    /// The longest path from `from` to `to` as a node list (inclusive of both
    /// endpoints), or `None` if unreachable.
    pub fn longest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        const UNSET: i64 = i64::MIN;
        let n = self.nodes.len();
        let mut dist = vec![UNSET; n];
        let mut pred = vec![usize::MAX; n];
        dist[from.0] = 0;
        // Nodes are topologically ordered by index.
        for u in from.0..n {
            if dist[u] == UNSET {
                continue;
            }
            for e in &self.edges {
                if e.src == u && (dist[e.dst] == UNSET || dist[u] + 1 > dist[e.dst]) {
                    dist[e.dst] = dist[u] + 1;
                    pred[e.dst] = u;
                }
            }
        }
        if dist[to.0] == UNSET || from == to {
            return None;
        }
        let mut path = vec![to.0];
        let mut cur = to.0;
        while cur != from.0 {
            cur = pred[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path.into_iter().map(NodeId).collect())
    }

    /// Interior nodes of the longest path between an edge's endpoints —
    /// Algorithm 2's `for pathnode ∈ longestpath(edge)` iterates these.
    pub fn longest_path_interior(&self, e: EdgeId) -> Vec<NodeId> {
        let edge = &self.edges[e.0];
        match self.longest_path(NodeId(edge.src), NodeId(edge.dst)) {
            Some(path) if path.len() > 2 => path[1..path.len() - 1].to_vec(),
            _ => Vec::new(),
        }
    }

    /// Whether an edge is *transitive*: a longer path between its endpoints
    /// exists (footnote 5: "a transitive edge is the edge not on the longest
    /// path between the source and the destination").
    pub fn edge_is_transitive(&self, e: EdgeId) -> bool {
        let edge = &self.edges[e.0];
        self.longest_path_len(NodeId(edge.src), NodeId(edge.dst))
            .map(|len| len >= 2)
            .unwrap_or(false)
    }

    /// `pathnext(node, edge)`: the immediate successor of `node` along the
    /// longest path to the edge's destination (the destination itself for a
    /// non-transitive edge). Algorithm 2 consults this node's dominance.
    pub fn pathnext(&self, e: EdgeId) -> NodeId {
        let edge = &self.edges[e.0];
        match self.longest_path(NodeId(edge.src), NodeId(edge.dst)) {
            Some(path) if path.len() >= 2 => path[1],
            _ => NodeId(edge.dst),
        }
    }

    /// Brute-force transitivity oracle for testing: DFS over all paths.
    pub fn edge_is_transitive_bruteforce(&self, e: EdgeId) -> bool {
        let edge = &self.edges[e.0];
        // Search for a path src -> ... -> dst with >= 2 edges.
        fn dfs(dag: &TensorDag, cur: usize, target: usize, depth: usize) -> bool {
            if cur == target && depth >= 2 {
                return true;
            }
            if cur == target {
                return false;
            }
            dag.edges
                .iter()
                .filter(|e| e.src == cur)
                .any(|e| dfs(dag, e.dst, target, depth + 1))
        }
        self.edges
            .iter()
            .filter(|other| other.src == edge.src && other.dst != edge.dst)
            .any(|other| dfs(self, other.dst, edge.dst, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cello_tensor::shape::RankExtent;

    fn dummy_spec() -> EinsumSpec {
        EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 100),
                RankExtent::dense("k", 8),
                RankExtent::dense("n", 8),
            ],
        )
    }

    fn dag_with(n: usize, edges: &[(usize, usize)]) -> TensorDag {
        let mut dag = TensorDag::new();
        for i in 0..n {
            dag.add_op(
                format!("op{i}"),
                dummy_spec(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], 800),
            );
        }
        for &(s, d) in edges {
            dag.add_edge(NodeId(s), NodeId(d), &["m", "n"]);
        }
        dag
    }

    #[test]
    fn reachability() {
        let dag = dag_with(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(dag.reachable(NodeId(0), NodeId(3)));
        assert!(dag.reachable(NodeId(1), NodeId(2)));
        assert!(!dag.reachable(NodeId(3), NodeId(0)));
        assert!(!dag.reachable(NodeId(0), NodeId(0)));
    }

    #[test]
    fn longest_path_diamond() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, plus direct 0 -> 3.
        let dag = dag_with(4, &[(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)]);
        assert_eq!(dag.longest_path_len(NodeId(0), NodeId(3)), Some(2));
        let p = dag.longest_path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], NodeId(0));
        assert_eq!(p[2], NodeId(3));
    }

    #[test]
    fn transitive_edge_detection() {
        let dag = dag_with(4, &[(0, 1), (0, 3), (1, 2), (2, 3)]);
        // 0->3 is transitive (0->1->2->3 exists); others are not.
        let ids: Vec<EdgeId> = dag.edges().map(|(id, _)| id).collect();
        let flags: Vec<bool> = ids.iter().map(|&e| dag.edge_is_transitive(e)).collect();
        assert_eq!(flags, vec![false, true, false, false]);
        for &e in &ids {
            assert_eq!(
                dag.edge_is_transitive(e),
                dag.edge_is_transitive_bruteforce(e),
                "mismatch on {e:?}"
            );
        }
    }

    #[test]
    fn longest_path_interior_of_transitive_edge() {
        let dag = dag_with(4, &[(0, 1), (0, 3), (1, 2), (2, 3)]);
        // Edge 0->3 has interior {1, 2}.
        let interior = dag.longest_path_interior(EdgeId(1));
        assert_eq!(interior, vec![NodeId(1), NodeId(2)]);
        // Non-transitive edge 0->1 has empty interior.
        assert!(dag.longest_path_interior(EdgeId(0)).is_empty());
    }

    #[test]
    fn pathnext_follows_longest_path() {
        let dag = dag_with(4, &[(0, 1), (0, 3), (1, 2), (2, 3)]);
        // For transitive edge 0->3, pathnext is 1 (start of the long path).
        assert_eq!(dag.pathnext(EdgeId(1)), NodeId(1));
        // For direct edge 0->1, pathnext is the destination.
        assert_eq!(dag.pathnext(EdgeId(0)), NodeId(1));
    }

    #[test]
    fn cg_iteration_shape_transitivity() {
        // Mini-CG: 1 -> 2 -> 3, 2 -> 4, 1 -> 4 (S reused by 4), 4 -> 5,
        // 4 -> 7 (via 5 -> 6 -> 7): the paper's delayed writebacks.
        let dag = dag_with(
            7,
            &[
                (0, 1), // 1->2 : S
                (1, 2), // 2->3 : Λ
                (1, 3), // 2->4 : Λ
                (0, 3), // 1->4 : S (transitive via 2)
                (3, 4), // 4->5 : R
                (4, 5), // 5->6 : Γ
                (5, 6), // 6->7 : Φ
                (3, 6), // 4->7 : R (transitive via 5,6)
            ],
        );
        let trans: Vec<bool> = dag
            .edges()
            .map(|(id, _)| dag.edge_is_transitive(id))
            .collect();
        assert_eq!(
            trans,
            vec![false, false, false, true, false, false, false, true]
        );
        // Interior of 4->7 is {5, 6}.
        assert_eq!(
            dag.longest_path_interior(EdgeId(7)),
            vec![NodeId(4), NodeId(5)]
        );
    }

    #[test]
    fn out_and_in_edges() {
        let dag = dag_with(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(dag.out_edges(NodeId(0)).len(), 2);
        assert_eq!(dag.in_edges(NodeId(2)).len(), 2);
        assert_eq!(dag.in_edges(NodeId(0)).len(), 0);
    }

    #[test]
    fn externals_registered() {
        let mut dag = dag_with(2, &[(0, 1)]);
        dag.add_external(
            TensorMeta::sparse("A", &["m", "k"], 1000),
            &[(NodeId(0), &["m", "k"])],
        );
        assert_eq!(dag.externals().len(), 1);
        assert_eq!(dag.externals()[0].consumers[0].0, 0);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_edge_rejected() {
        let mut dag = dag_with(2, &[]);
        dag.add_edge(NodeId(1), NodeId(0), &["m"]);
    }
}

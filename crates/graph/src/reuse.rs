//! Tensor-level reuse distance and frequency.
//!
//! This is the coarse-grained metadata SCORE hands CHORD (Fig 10's `Freq` and
//! `Dist` columns): for every tensor, *how many times* it will be consumed and
//! *how far away* (in scheduled operations) its next consumer is. RIFF ranks
//! replacement victims by exactly these two numbers (§VI-A) — e.g. `R`
//! (freq 3, dist 1) outprioritizes `X` (freq 1, dist 7), so the tail of `X`
//! is evicted to make room for `R`.

use crate::dag::{NodeId, TensorDag};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Reuse statistics of one tensor under a given schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TensorReuse {
    /// Tensor name.
    pub name: String,
    /// Producer node (None for external inputs).
    pub producer: Option<NodeId>,
    /// Consumer nodes in schedule order.
    pub consumers: Vec<NodeId>,
    /// Number of future uses (Fig 10 `Freq`).
    pub frequency: u32,
    /// Schedule distance (ops) from the producer to the first consumer
    /// (Fig 10 `Dist`); 0 when produced and consumed by adjacent ops.
    pub first_distance: u32,
    /// Footprint in words.
    pub words: u64,
}

/// Reuse profile of an entire DAG under a schedule (an ordering of its nodes).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReuseProfile {
    tensors: BTreeMap<String, TensorReuse>,
}

impl ReuseProfile {
    /// Computes reuse metadata for every op-produced tensor and every external
    /// input, under `schedule` (a permutation of the DAG's nodes; typically
    /// its topological order).
    pub fn compute(dag: &TensorDag, schedule: &[NodeId]) -> Self {
        let pos: BTreeMap<NodeId, usize> =
            schedule.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut tensors = BTreeMap::new();

        // Op-produced tensors: group out-edges by producer.
        for (nid, node) in dag.nodes() {
            let mut consumers: Vec<NodeId> = dag
                .out_edges(nid)
                .into_iter()
                .map(|e| NodeId(dag.edge(e).dst))
                .collect();
            consumers.sort_by_key(|c| pos[c]);
            consumers.dedup();
            let first_distance = consumers
                .first()
                .map(|c| (pos[c] - pos[&nid]) as u32)
                .unwrap_or(0);
            tensors.insert(
                node.output.name.clone(),
                TensorReuse {
                    name: node.output.name.clone(),
                    producer: Some(nid),
                    frequency: consumers.len() as u32,
                    consumers,
                    first_distance,
                    words: node.output.words,
                },
            );
        }

        // External inputs: distance measured from schedule start.
        for ext in dag.externals() {
            let mut consumers: Vec<NodeId> =
                ext.consumers.iter().map(|&(n, _)| NodeId(n)).collect();
            consumers.sort_by_key(|c| pos[c]);
            consumers.dedup();
            let first_distance = consumers.first().map(|c| pos[c] as u32).unwrap_or(0);
            tensors.insert(
                ext.meta.name.clone(),
                TensorReuse {
                    name: ext.meta.name.clone(),
                    producer: None,
                    frequency: consumers.len() as u32,
                    consumers,
                    first_distance,
                    words: ext.meta.words,
                },
            );
        }
        Self { tensors }
    }

    /// Reuse record for a tensor.
    pub fn tensor(&self, name: &str) -> Option<&TensorReuse> {
        self.tensors.get(name)
    }

    /// All records.
    pub fn iter(&self) -> impl Iterator<Item = &TensorReuse> {
        self.tensors.values()
    }

    /// Remaining uses of `name` *after* schedule position `pos` — the dynamic
    /// `freq` RIFF consults as the program advances.
    pub fn remaining_uses(
        &self,
        name: &str,
        pos: usize,
        schedule_pos: &BTreeMap<NodeId, usize>,
    ) -> u32 {
        self.tensors
            .get(name)
            .map(|t| t.consumers.iter().filter(|c| schedule_pos[c] > pos).count() as u32)
            .unwrap_or(0)
    }

    /// Distance (ops) from `pos` to the next use of `name`, or `None` when the
    /// tensor is dead — the dynamic `dist` RIFF consults.
    pub fn next_use_distance(
        &self,
        name: &str,
        pos: usize,
        schedule_pos: &BTreeMap<NodeId, usize>,
    ) -> Option<u32> {
        self.tensors.get(name).and_then(|t| {
            t.consumers
                .iter()
                .map(|c| schedule_pos[c])
                .filter(|&p| p > pos)
                .min()
                .map(|p| (p - pos) as u32)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::TensorMeta;
    use crate::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn dag() -> TensorDag {
        // 0 -> 1 (T0), 0 -> 3 (T0 again), 1 -> 2 (T1), 2 -> 3 (T2).
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 64),
                RankExtent::dense("k", 8),
                RankExtent::dense("n", 8),
            ],
        );
        let mut dag = TensorDag::new();
        for i in 0..4 {
            dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], 512),
            );
        }
        dag.add_edge(NodeId(0), NodeId(1), &["m", "n"]);
        dag.add_edge(NodeId(0), NodeId(3), &["m", "n"]);
        dag.add_edge(NodeId(1), NodeId(2), &["m", "n"]);
        dag.add_edge(NodeId(2), NodeId(3), &["m", "n"]);
        dag.add_external(
            TensorMeta::sparse("A", &["m", "k"], 4096),
            &[(NodeId(0), &["m", "k"]), (NodeId(2), &["m", "k"])],
        );
        dag
    }

    #[test]
    fn frequency_and_distance() {
        let d = dag();
        let profile = ReuseProfile::compute(&d, &d.topo_order());
        let t0 = profile.tensor("T0").unwrap();
        assert_eq!(t0.frequency, 2);
        assert_eq!(t0.first_distance, 1); // next consumer is op1
        assert_eq!(t0.consumers, vec![NodeId(1), NodeId(3)]);
        let t2 = profile.tensor("T2").unwrap();
        assert_eq!(t2.frequency, 1);
        assert_eq!(t2.first_distance, 1);
        // Terminal tensor has no consumers.
        assert_eq!(profile.tensor("T3").unwrap().frequency, 0);
    }

    #[test]
    fn external_tracked() {
        let d = dag();
        let profile = ReuseProfile::compute(&d, &d.topo_order());
        let a = profile.tensor("A").unwrap();
        assert_eq!(a.frequency, 2);
        assert!(a.producer.is_none());
    }

    #[test]
    fn dynamic_remaining_uses() {
        let d = dag();
        let order = d.topo_order();
        let profile = ReuseProfile::compute(&d, &order);
        let pos: BTreeMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        // After op0 executes (pos 0), T0 still has consumers op1 and op3.
        assert_eq!(profile.remaining_uses("T0", 0, &pos), 2);
        // After op1 (pos 1), only op3 remains.
        assert_eq!(profile.remaining_uses("T0", 1, &pos), 1);
        assert_eq!(profile.remaining_uses("T0", 3, &pos), 0);
        assert_eq!(profile.next_use_distance("T0", 1, &pos), Some(2));
        assert_eq!(profile.next_use_distance("T0", 3, &pos), None);
    }

    #[test]
    fn fig10_style_priorities() {
        // The Fig 10 example: R (freq 3, dist 1) must outrank X (freq 1, dist 7)
        // — here we just confirm the profile exposes the raw numbers needed.
        let d = dag();
        let profile = ReuseProfile::compute(&d, &d.topo_order());
        let t0 = profile.tensor("T0").unwrap(); // freq 2 stand-in for R
        let t2 = profile.tensor("T2").unwrap(); // freq 1 stand-in for X
        assert!(t0.frequency > t2.frequency);
    }
}

//! Tensors and the edges that carry them.
//!
//! An edge `u → v` means "v consumes the tensor u produced". The tensor's
//! *rank names as the consumer sees them* ride along (`dst_ranks`): CG's `S`
//! is produced as `S[m,n]` by line 1 but consumed as `S[k,n]` by line 2a —
//! Algorithm 2's "unshared" test (`edge.dest.dominance ∉ edge.tensor.ranks`)
//! is evaluated against these consumer-side names. The consumer's preferred
//! layout also rides along so SCORE can count swizzles (Challenge 4).

use cello_tensor::layout::Layout;
use cello_tensor::shape::RankId;
use cello_tensor::sparse::OccupancyStats;
use serde::{Deserialize, Serialize};

/// Metadata of a tensor (an op output or an external DAG input such as CG's `A`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TensorMeta {
    /// Tensor name (`"S"`, `"R"`, `"A"`, …) — unique within a DAG.
    pub name: String,
    /// Rank names as produced.
    pub ranks: Vec<RankId>,
    /// Footprint in words (CSR payload incl. metadata for sparse tensors).
    pub words: u64,
    /// Whether the tensor is stored compressed.
    pub sparse: bool,
    /// The layout the producer naturally emits.
    pub layout: Layout,
    /// Per-row-block occupancy statistics of the real nonzero structure,
    /// when known (`.mtx`-derived sparse operands). `None` keeps the
    /// worst-case dense model — the pre-occupancy behavior, bit for bit.
    pub occupancy: Option<OccupancyStats>,
}

impl TensorMeta {
    /// Dense tensor helper.
    pub fn dense(name: impl Into<String>, ranks: &[&str], words: u64) -> Self {
        Self {
            name: name.into(),
            ranks: ranks.iter().map(|r| RankId::new(r)).collect(),
            words,
            sparse: false,
            layout: Layout::RowMajor,
            occupancy: None,
        }
    }

    /// Sparse (CSR/CSC) tensor helper; `words` must include metadata payload.
    pub fn sparse(name: impl Into<String>, ranks: &[&str], words: u64) -> Self {
        Self {
            sparse: true,
            ..Self::dense(name, ranks, words)
        }
    }

    /// Same tensor with a different layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Same tensor carrying occupancy statistics of its nonzero structure
    /// (the Tailors-style overbooking model reads these).
    pub fn with_occupancy(mut self, occupancy: OccupancyStats) -> Self {
        self.occupancy = Some(occupancy);
        self
    }
}

/// A producer→consumer edge of the tensor dependency DAG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Producing node index.
    pub src: usize,
    /// Consuming node index.
    pub dst: usize,
    /// Rank names the consumer uses for this tensor (for the "unshared" test).
    pub dst_ranks: Vec<RankId>,
    /// The layout the consumer wants to stream the tensor in.
    pub dst_layout: Layout,
}

impl Edge {
    /// Convenience constructor with rank names.
    pub fn new(src: usize, dst: usize, dst_ranks: &[&str]) -> Self {
        Self {
            src,
            dst,
            dst_ranks: dst_ranks.iter().map(|r| RankId::new(r)).collect(),
            dst_layout: Layout::RowMajor,
        }
    }

    /// Sets the consumer-side layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.dst_layout = layout;
        self
    }

    /// True when `rank` is one of the tensor's ranks at the consumer — i.e.
    /// the consumer's dominant rank is *shared* with this tensor.
    pub fn shares_rank(&self, rank: RankId) -> bool {
        self.dst_ranks.contains(&rank)
    }
}

/// An external (DRAM-resident) input tensor with its consumer list — CG's `A`
/// and the initial `X`, `B`. These are not produced by any node, but they are
/// first-class reuse candidates: Fig 10's RIFF table holds `A` with `Freq 10`
/// (one use per CG iteration).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExternalInput {
    /// Tensor metadata.
    pub meta: TensorMeta,
    /// `(consumer node, rank names at that consumer)` pairs.
    pub consumers: Vec<(usize, Vec<RankId>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_meta() {
        let t = TensorMeta::dense("S", &["m", "n"], 81_920 * 16);
        assert_eq!(t.name, "S");
        assert!(!t.sparse);
        assert_eq!(t.ranks.len(), 2);
        assert_eq!(t.words, 1_310_720);
    }

    #[test]
    fn sparse_meta() {
        let t = TensorMeta::sparse("A", &["m", "k"], 327_680 * 2 + 81_921);
        assert!(t.sparse);
        assert!(t.occupancy.is_none(), "worst-case dense by default");
        let o = t.with_occupancy(OccupancyStats::dense());
        assert_eq!(o.occupancy, Some(OccupancyStats::dense()));
    }

    #[test]
    fn edge_shares_rank() {
        let e = Edge::new(0, 1, &["k", "n"]);
        assert!(e.shares_rank(RankId::new("k")));
        assert!(e.shares_rank(RankId::new("n")));
        assert!(!e.shares_rank(RankId::new("m")));
    }

    #[test]
    fn layout_builders() {
        let t = TensorMeta::dense("Z", &["m"], 8).with_layout(Layout::ColMajor);
        assert_eq!(t.layout, Layout::ColMajor);
        let e = Edge::new(0, 1, &["m"]).with_layout(Layout::ColMajor);
        assert_eq!(e.dst_layout, Layout::ColMajor);
    }
}

//! Structural metrics of tensor dependency DAGs.
//!
//! The paper argues scheduling complexity "burgeons with operation DAG depth
//! and the number of tensors involved" (§I) — these metrics quantify that for
//! reporting: depth (critical path), width (max antichain via level sizes),
//! transitive-edge count (the delayed dependencies), and total words in
//! flight.

use crate::dag::{NodeId, TensorDag};
use serde::{Deserialize, Serialize};

/// Summary statistics of a DAG.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagMetrics {
    /// Number of operation nodes.
    pub nodes: usize,
    /// Number of producer→consumer edges.
    pub edges: usize,
    /// Number of external (DRAM-resident) inputs.
    pub externals: usize,
    /// Longest path length in edges (critical path).
    pub depth: usize,
    /// Maximum number of nodes at the same depth level (parallelism bound).
    pub width: usize,
    /// Number of transitive edges — the delayed downstream dependencies.
    pub transitive_edges: usize,
    /// Total MACs over all nodes.
    pub total_macs: u64,
    /// Total words of all op-produced tensors.
    pub intermediate_words: u64,
    /// Total words of all external inputs.
    pub external_words: u64,
}

/// Computes [`DagMetrics`] for a DAG.
pub fn metrics(dag: &TensorDag) -> DagMetrics {
    let n = dag.node_count();
    // Level = longest distance from any source.
    let mut level = vec![0usize; n];
    for u in 0..n {
        for e in dag.out_edges(NodeId(u)) {
            let dst = dag.edge(e).dst;
            level[dst] = level[dst].max(level[u] + 1);
        }
    }
    let depth = level.iter().copied().max().unwrap_or(0);
    let mut level_counts = vec![0usize; depth + 1];
    for &l in &level {
        level_counts[l] += 1;
    }
    let width = level_counts.into_iter().max().unwrap_or(0);
    let transitive_edges = dag
        .edges()
        .filter(|&(id, _)| dag.edge_is_transitive(id))
        .count();
    DagMetrics {
        nodes: n,
        edges: dag.edge_count(),
        externals: dag.externals().len(),
        depth,
        width,
        transitive_edges,
        total_macs: dag.nodes().map(|(_, x)| x.macs).sum(),
        intermediate_words: dag.nodes().map(|(_, x)| x.output.words).sum(),
        external_words: dag.externals().iter().map(|e| e.meta.words).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::TensorMeta;
    use crate::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    fn chain(n: usize, extra: &[(usize, usize)]) -> TensorDag {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 100),
                RankExtent::dense("k", 4),
                RankExtent::dense("n", 4),
            ],
        );
        let mut dag = TensorDag::new();
        for i in 0..n {
            dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], 400),
            );
        }
        for i in 1..n {
            dag.add_edge(NodeId(i - 1), NodeId(i), &["m", "k"]);
        }
        for &(a, b) in extra {
            dag.add_edge(NodeId(a), NodeId(b), &["m", "k"]);
        }
        dag
    }

    #[test]
    fn chain_metrics() {
        let m = metrics(&chain(5, &[]));
        assert_eq!(m.nodes, 5);
        assert_eq!(m.edges, 4);
        assert_eq!(m.depth, 4);
        assert_eq!(m.width, 1);
        assert_eq!(m.transitive_edges, 0);
        assert_eq!(m.total_macs, 5 * 100 * 4 * 4);
        assert_eq!(m.intermediate_words, 5 * 400);
    }

    #[test]
    fn skip_edge_counted_transitive() {
        let m = metrics(&chain(5, &[(0, 4)]));
        assert_eq!(m.transitive_edges, 1);
        assert_eq!(m.depth, 4);
    }

    #[test]
    fn diamond_width() {
        // 0 -> {1, 2} -> 3: width 2 at level 1.
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 10),
                RankExtent::dense("k", 2),
                RankExtent::dense("n", 2),
            ],
        );
        let mut dag = TensorDag::new();
        for i in 0..4 {
            dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], 20),
            );
        }
        dag.add_edge(NodeId(0), NodeId(1), &["m", "k"]);
        dag.add_edge(NodeId(0), NodeId(2), &["m", "k"]);
        dag.add_edge(NodeId(1), NodeId(3), &["m", "k"]);
        dag.add_edge(NodeId(2), NodeId(3), &["m", "k"]);
        let m = metrics(&dag);
        assert_eq!(m.width, 2);
        assert_eq!(m.depth, 2);
    }

    #[test]
    fn empty_dag() {
        let m = metrics(&TensorDag::new());
        assert_eq!(m.nodes, 0);
        assert_eq!(m.depth, 0);
    }
}

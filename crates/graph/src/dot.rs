//! Graphviz rendering of tensor dependency DAGs.
//!
//! Fig 7 of the paper presents Algorithm 2's output as a colored graph
//! (pipelineable = blue, delayed writeback = brick red, delayed hold = cyan,
//! parallel multicast = green). The `fig07_classify` harness uses this module
//! to emit the same artifact; edge colors are supplied by the caller so the
//! graph crate stays independent of the scheduler.

use crate::dag::{EdgeId, TensorDag};
use std::fmt::Write as _;

/// Renders the DAG as Graphviz `dot`. `edge_style(e)` returns
/// `(color, label)` per edge; node labels show name and dominance.
pub fn to_dot<F>(dag: &TensorDag, mut edge_style: F) -> String
where
    F: FnMut(EdgeId) -> (String, String),
{
    let mut out = String::new();
    writeln!(out, "digraph cello {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    writeln!(out, "  node [shape=circle fontsize=10];").unwrap();
    for (id, node) in dag.nodes() {
        writeln!(
            out,
            "  n{} [label=\"{}\\n{}\"];",
            id.0,
            node.name.replace('"', "'"),
            node.dominance
        )
        .unwrap();
    }
    for (id, edge) in dag.edges() {
        let (color, label) = edge_style(id);
        writeln!(
            out,
            "  n{} -> n{} [color=\"{}\" label=\"{}\" fontsize=9];",
            edge.src, edge.dst, color, label
        )
        .unwrap();
    }
    for (i, ext) in dag.externals().iter().enumerate() {
        writeln!(
            out,
            "  x{i} [label=\"{}\" shape=box style=dashed];",
            ext.meta.name
        )
        .unwrap();
        for (consumer, _) in &ext.consumers {
            writeln!(out, "  x{i} -> n{consumer} [style=dashed];").unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::NodeId;
    use crate::edge::TensorMeta;
    use crate::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    #[test]
    fn dot_output_contains_nodes_edges_and_externals() {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 10),
                RankExtent::dense("k", 2),
                RankExtent::dense("n", 2),
            ],
        );
        let mut dag = TensorDag::new();
        let a = dag.add_op(
            "op0",
            spec.clone(),
            OpKind::TensorMac,
            TensorMeta::dense("T0", &["m", "n"], 20),
        );
        let b = dag.add_op(
            "op1",
            spec,
            OpKind::TensorMac,
            TensorMeta::dense("T1", &["m", "n"], 20),
        );
        dag.add_edge(a, b, &["m", "n"]);
        dag.add_external(
            TensorMeta::sparse("A", &["m", "k"], 100),
            &[(NodeId(0), &["m", "k"])],
        );
        let dot = to_dot(&dag, |_| ("blue".into(), "pipe".into()));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("color=\"blue\""));
        assert!(dot.contains("x0 [label=\"A\""));
        assert!(dot.contains("x0 -> n0"));
        assert!(dot.ends_with("}\n"));
    }
}

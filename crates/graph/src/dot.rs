//! Graphviz rendering of tensor dependency DAGs.
//!
//! Fig 7 of the paper presents Algorithm 2's output as a colored graph
//! (pipelineable = blue, delayed writeback = brick red, delayed hold = cyan,
//! parallel multicast = green). The `fig07_classify` harness uses this module
//! to emit the same artifact; edge colors are supplied by the caller so the
//! graph crate stays independent of the scheduler. [`to_dot_annotated`]
//! additionally groups nodes into per-phase clusters with caller-supplied
//! labels (phase index, SRAM split) so a *scheduled* DAG — e.g. one served
//! by `cello-serve` — can be visually audited.

use crate::dag::{EdgeId, NodeId, TensorDag};
use std::fmt::Write as _;

/// Renders the DAG as Graphviz `dot`. `edge_style(e)` returns
/// `(color, label)` per edge; node labels show name and dominance.
pub fn to_dot<F>(dag: &TensorDag, edge_style: F) -> String
where
    F: FnMut(EdgeId) -> (String, String),
{
    to_dot_annotated(dag, edge_style, |_| None, &[])
}

/// [`to_dot`] with schedule annotations: `phase_of(node)` assigns nodes to
/// phases (None = ungrouped), and nodes of phase `p` render inside a
/// `subgraph cluster_p` labeled `phases[p]` (falling back to `phase p` when
/// the label list is short). The caller supplies labels so the graph crate
/// stays independent of the scheduler — `cello-serve` passes each phase's
/// index plus its resolved pipeline/RF/CHORD SRAM split.
pub fn to_dot_annotated<F, G>(
    dag: &TensorDag,
    mut edge_style: F,
    mut phase_of: G,
    phases: &[String],
) -> String
where
    F: FnMut(EdgeId) -> (String, String),
    G: FnMut(NodeId) -> Option<usize>,
{
    let mut out = String::new();
    writeln!(out, "digraph cello {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    writeln!(out, "  node [shape=circle fontsize=10];").unwrap();
    let mut grouped: Vec<(usize, Vec<String>)> = Vec::new();
    for (id, node) in dag.nodes() {
        let line = format!(
            "n{} [label=\"{}\\n{}\"];",
            id.0,
            node.name.replace('"', "'"),
            node.dominance
        );
        match phase_of(id) {
            Some(p) => match grouped.iter_mut().find(|(gp, _)| *gp == p) {
                Some((_, lines)) => lines.push(line),
                None => grouped.push((p, vec![line])),
            },
            None => writeln!(out, "  {line}").unwrap(),
        }
    }
    grouped.sort_by_key(|(p, _)| *p);
    for (p, lines) in grouped {
        writeln!(out, "  subgraph cluster_{p} {{").unwrap();
        let label = phases
            .get(p)
            .cloned()
            .unwrap_or_else(|| format!("phase {p}"));
        writeln!(out, "    label=\"{}\";", label.replace('"', "'")).unwrap();
        writeln!(out, "    style=rounded; fontsize=9;").unwrap();
        for line in lines {
            writeln!(out, "    {line}").unwrap();
        }
        writeln!(out, "  }}").unwrap();
    }
    for (id, edge) in dag.edges() {
        let (color, label) = edge_style(id);
        writeln!(
            out,
            "  n{} -> n{} [color=\"{}\" label=\"{}\" fontsize=9];",
            edge.src, edge.dst, color, label
        )
        .unwrap();
    }
    for (i, ext) in dag.externals().iter().enumerate() {
        writeln!(
            out,
            "  x{i} [label=\"{}\" shape=box style=dashed];",
            ext.meta.name
        )
        .unwrap();
        for (consumer, _) in &ext.consumers {
            writeln!(out, "  x{i} -> n{consumer} [style=dashed];").unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::NodeId;
    use crate::edge::TensorMeta;
    use crate::node::OpKind;
    use cello_tensor::einsum::EinsumSpec;
    use cello_tensor::shape::RankExtent;

    #[test]
    fn dot_output_contains_nodes_edges_and_externals() {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 10),
                RankExtent::dense("k", 2),
                RankExtent::dense("n", 2),
            ],
        );
        let mut dag = TensorDag::new();
        let a = dag.add_op(
            "op0",
            spec.clone(),
            OpKind::TensorMac,
            TensorMeta::dense("T0", &["m", "n"], 20),
        );
        let b = dag.add_op(
            "op1",
            spec,
            OpKind::TensorMac,
            TensorMeta::dense("T1", &["m", "n"], 20),
        );
        dag.add_edge(a, b, &["m", "n"]);
        dag.add_external(
            TensorMeta::sparse("A", &["m", "k"], 100),
            &[(NodeId(0), &["m", "k"])],
        );
        let dot = to_dot(&dag, |_| ("blue".into(), "pipe".into()));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("color=\"blue\""));
        assert!(dot.contains("x0 [label=\"A\""));
        assert!(dot.contains("x0 -> n0"));
        assert!(dot.ends_with("}\n"));
        // The un-annotated render emits no clusters.
        assert!(!dot.contains("subgraph"));
    }

    /// Annotated output groups nodes into labeled per-phase clusters, keeps
    /// edges/externals intact, and falls back to `phase p` labels when the
    /// label list runs short.
    #[test]
    fn annotated_dot_groups_nodes_into_phase_clusters() {
        let spec = EinsumSpec::parse(
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 10),
                RankExtent::dense("k", 2),
                RankExtent::dense("n", 2),
            ],
        );
        let mut dag = TensorDag::new();
        let mut prev = None;
        for i in 0..3 {
            let id = dag.add_op(
                format!("op{i}"),
                spec.clone(),
                OpKind::TensorMac,
                TensorMeta::dense(format!("T{i}"), &["m", "n"], 20),
            );
            if let Some(p) = prev {
                dag.add_edge(p, id, &["m", "n"]);
            }
            prev = Some(id);
        }
        let labels = vec!["phase 0 | pb=65536 rf=16384 chord=966656".to_string()];
        let dot = to_dot_annotated(
            &dag,
            |_| ("blue".into(), String::new()),
            |n| if n.0 < 2 { Some(0) } else { Some(1) },
            &labels,
        );
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("label=\"phase 0 | pb=65536 rf=16384 chord=966656\";"));
        assert!(dot.contains("label=\"phase 1\";"), "fallback label");
        assert!(dot.contains("n0 -> n1"));
        // Cluster 0 holds n0/n1, cluster 1 holds n2.
        let c0 = dot.find("cluster_0").unwrap();
        let c1 = dot.find("cluster_1").unwrap();
        let n2 = dot.find("n2 [label").unwrap();
        assert!(c0 < c1 && c1 < n2);
    }
}

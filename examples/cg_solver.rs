//! Numeric block Conjugate Gradient end-to-end: generate an SPD system, solve
//! it with the real Algorithm 1 kernels, verify the solution, then model the
//! same computation on the CELLO accelerator.
//!
//! ```sh
//! cargo run --release --example cg_solver
//! ```

use cello::core::accel::CelloConfig;
use cello::sim::baselines::{run_config, ConfigKind};
use cello::tensor::dense::DenseMatrix;
use cello::tensor::gen::laplacian_2d;
use cello::tensor::kernels::spmm;
use cello::workloads::cg::{build_cg_dag, solve_block_cg, CgParams};

fn main() {
    // A 32x32 2-D Poisson problem (1024 unknowns), 4 right-hand sides.
    // (Textbook block CG loses search-direction rank as individual columns
    // converge; production solvers deflate. We stay in the robust envelope.)
    let (nx, ny, nrhs) = (32usize, 32usize, 4usize);
    let a = laplacian_2d(nx, ny);
    println!(
        "A: {}x{} SPD, nnz = {} (occupancy {:.2}/row)",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.occupancy()
    );
    let mut b = DenseMatrix::zeros(a.rows(), nrhs);
    for i in 0..a.rows() {
        for j in 0..nrhs {
            b.set(i, j, ((i * (j + 3)) % 17) as f64 / 17.0 + 0.05);
        }
    }

    let result = solve_block_cg(&a, &b, 500, 1e-12);
    println!(
        "block CG: {} iterations, converged = {}",
        result.iterations_run, result.converged
    );
    for (i, r) in result.residual_history.iter().enumerate().take(6) {
        println!("  iter {:3}: max diag(Γ) = {:.3e}", i + 1, r);
    }
    let residual = {
        let ax = spmm(&a, &result.x);
        ax.max_abs_diff(&b)
    };
    println!("‖A·X − B‖∞ = {residual:.3e}");

    // Model the same solve on the accelerator (shapes + iteration count).
    let params = CgParams {
        m: a.rows() as u64,
        occupancy: a.occupancy(),
        a_payload_words: a.payload_words(),
        n: nrhs as u64,
        nprime: nrhs as u64,
        iterations: result.iterations_run.min(10),
        a_occupancy: Some(a.occupancy_stats(a.rows().div_ceil(64).max(1))),
    };
    let dag = build_cg_dag(&params);
    let accel = CelloConfig::paper();
    for kind in [ConfigKind::Flexagon, ConfigKind::Flat, ConfigKind::Cello] {
        let r = run_config(&dag, kind, &accel, "cg_solver");
        println!(
            "{:10}: {:8.1} GFPMuls/s, {:7.2} MB DRAM, achieved intensity {:.2} ops/B",
            kind.label(),
            r.gfpmuls_per_sec(),
            r.dram_bytes as f64 / 1e6,
            r.achieved_intensity()
        );
    }
}

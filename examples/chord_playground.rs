//! Drive the CHORD buffer by hand through the paper's Fig 9 / Fig 11
//! scenarios: watch PRELUDE keep tensor heads, RIFF evict lower-priority
//! tails, and the RIFF index table track it all at operand granularity.
//!
//! ```sh
//! cargo run --example chord_playground
//! ```

use cello::core::chord::{Chord, ChordConfig, ChordPolicyKind, RiffPriority};

fn dump(chord: &Chord, note: &str) {
    println!("-- {note}");
    println!(
        "   occupancy {}/{} words",
        chord.used_words(),
        chord.config().capacity_words
    );
    for e in chord.table().entries() {
        println!(
            "   {:4} resident {:5}/{:5} words  queue [{:5},{:5})  dirty={} freq={} dist={}",
            e.name,
            e.resident_words,
            e.total_words,
            e.start_index,
            e.end_index,
            e.dirty,
            e.priority.freq,
            e.priority.dist
        );
    }
}

fn main() {
    let mut chord = Chord::new(ChordConfig {
        capacity_words: 1_000,
        word_bytes: 4,
        policy: ChordPolicyKind::PreludeRiff,
        max_entries: 64,
    });

    // Fig 9 (left): PRELUDE — tensor P larger than the buffer. The head stays
    // resident, the tail streams to DRAM.
    let spilled = chord.produce("P", 1_400, RiffPriority::new(2, 1));
    dump(
        &chord,
        &format!("PRELUDE: produced P (1400 words), spilled {spilled}"),
    );

    // Read P back: the resident head hits, the spilled tail misses.
    let r = chord.consume("P", Some(RiffPriority::new(1, 4)));
    println!(
        "   consume P: {} hit / {} miss words\n",
        r.hit_words, r.miss_words
    );

    // Fig 9 (right): RIFF — X (reused far in the future) is resident when R
    // (reused sooner and more often) arrives: R evicts X's *tail*.
    let mut chord = Chord::new(ChordConfig {
        capacity_words: 1_000,
        word_bytes: 4,
        policy: ChordPolicyKind::PreludeRiff,
        max_entries: 64,
    });
    chord.produce("X", 800, RiffPriority::new(1, 7));
    dump(&chord, "X produced (freq 1, dist 7)");
    chord.produce("R", 600, RiffPriority::new(3, 1));
    dump(
        &chord,
        "RIFF: R produced (freq 3, dist 1) — X's tail evicted",
    );
    println!("   X audit: {:?}\n", chord.audit("X"));

    // Fig 11 step 3: after R dies, a re-fetch of a clean tensor reclaims space.
    chord.consume("R", Some(RiffPriority::new(2, 2)));
    chord.consume("R", Some(RiffPriority::new(1, 1)));
    chord.consume("R", None); // last use: dead, dropped without writeback
    dump(&chord, "R fully consumed and retired");
    chord.fetch("A", 700, RiffPriority::new(10, 3));
    dump(&chord, "A fetched from DRAM (clean, freq 10)");

    chord
        .check_conservation()
        .expect("every word accounted exactly once");
    println!("\nconservation check passed; stats: {:?}", chord.stats());
}

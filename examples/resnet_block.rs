//! ResNet residual block scenario (paper Fig 16a): the skip connection is a
//! *delayed-hold* dependency — FLAT cannot fuse it, SET and CELLO can. This
//! example prints the classification, the cluster structure each scheduler
//! produces, and the resulting traffic at both Table V bandwidths.
//!
//! ```sh
//! cargo run --release --example resnet_block
//! ```

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule, ScheduleOptions};
use cello::core::score::classify::classify;
use cello::graph::dag::NodeId;
use cello::sim::baselines::{run_config, ConfigKind};
use cello::workloads::resnet::{build_resnet_block_dag, ResNetBlockParams};

fn main() {
    let prm = ResNetBlockParams::conv3x();
    let dag = build_resnet_block_dag(&prm);
    println!(
        "conv3_x block: M = {} pixels, convs K/N = {}/{}, {}/{}, {}/{} (+add, +skip)",
        prm.m(),
        prm.conv1().k,
        prm.conv1().n,
        prm.conv2().k,
        prm.conv2().n,
        prm.conv3().k,
        prm.conv3().n,
    );

    let cls = classify(&dag);
    for (eid, edge) in dag.edges() {
        println!(
            "  {} -> {}: {}",
            dag.node(NodeId(edge.src)).name,
            dag.node(NodeId(edge.dst)).name,
            cls.dep(eid)
        );
    }

    for (name, opts) in [
        ("FLAT", ScheduleOptions::flat()),
        ("SET", ScheduleOptions::set_like()),
        ("CELLO", ScheduleOptions::cello()),
    ] {
        let s = build_schedule(&dag, opts);
        let shape: Vec<usize> = s.phases.iter().map(|p| p.ops.len()).collect();
        println!("{name:6} clusters: {shape:?}");
    }

    for accel in [
        ("1TB/s", CelloConfig::paper().with_word_bytes(2)),
        ("250GB/s", CelloConfig::paper_250gbs().with_word_bytes(2)),
    ] {
        println!("\nbandwidth {}:", accel.0);
        for kind in [ConfigKind::Flat, ConfigKind::SetLike, ConfigKind::Cello] {
            let r = run_config(&dag, kind, &accel.1, "resnet_block");
            println!(
                "  {:6} {:>9.1} GFPMuls/s  {:>10} DRAM bytes",
                kind.label(),
                r.gfpmuls_per_sec(),
                r.dram_bytes
            );
        }
    }
    println!("\nexpected: SET == CELLO (hold suffices; ResNet has no delayed writeback).");
}

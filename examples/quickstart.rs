//! Quickstart: build a Conjugate-Gradient tensor DAG, let SCORE classify and
//! schedule it, and compare CELLO against the op-by-op oracle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule, ScheduleOptions};
use cello::core::score::classify::classify;
use cello::sim::baselines::{run_config, ConfigKind};
use cello::workloads::cg::{build_cg_dag, CgParams};
use cello::workloads::datasets::FV1;

fn main() {
    // 1. Describe the problem: block CG on the fv1-sized matrix, N = 16
    //    simultaneous right-hand sides, 5 solver iterations.
    let params = CgParams::from_dataset(&FV1, 16, 5);
    let dag = build_cg_dag(&params);
    println!(
        "CG DAG: {} ops, {} edges, {} external inputs",
        dag.node_count(),
        dag.edge_count(),
        dag.externals().len()
    );

    // 2. Algorithm 2: classify every tensor-level dependency.
    let cls = classify(&dag);
    let h = cls.histogram();
    println!(
        "dependencies: {} sequential, {} pipelineable, {} delayed-hold, {} delayed-writeback",
        h[0], h[1], h[2], h[3]
    );

    // 3. SCORE: form pipeline clusters and steer tensors to buffers.
    let schedule = build_schedule(&dag, ScheduleOptions::cello());
    schedule
        .validate(&dag)
        .expect("schedule is a topological order");
    println!(
        "SCORE formed {} clusters over {} ops (first iteration: {:?})",
        schedule.phases.len(),
        dag.node_count(),
        schedule.phases[..5]
            .iter()
            .map(|p| p.ops.len())
            .collect::<Vec<_>>()
    );

    // 4. Simulate on the Table V accelerator: CELLO vs the best intra-op oracle.
    let accel = CelloConfig::paper();
    let cello = run_config(&dag, ConfigKind::Cello, &accel, "quickstart");
    let oracle = run_config(&dag, ConfigKind::Flexagon, &accel, "quickstart");
    println!(
        "Flexagon : {:8.1} GFPMuls/s, {:6.1} MB DRAM traffic",
        oracle.gfpmuls_per_sec(),
        oracle.dram_bytes as f64 / 1e6
    );
    println!(
        "CELLO    : {:8.1} GFPMuls/s, {:6.1} MB DRAM traffic",
        cello.gfpmuls_per_sec(),
        cello.dram_bytes as f64 / 1e6
    );
    println!(
        "speedup  : {:.2}x   energy efficiency: {:.2}x",
        cello.speedup_over(&oracle),
        1.0 / cello.relative_energy(&oracle)
    );
}

//! GCN layer scenario (paper Fig 13): run a numeric graph-convolution forward
//! pass, then compare scheduling strategies — on GNNs the single intermediate
//! is purely pipelineable, so FLAT-style pipelining already matches CELLO.
//!
//! ```sh
//! cargo run --release --example gnn_layer
//! ```

use cello::core::accel::CelloConfig;
use cello::sim::baselines::{run_config, ConfigKind};
use cello::tensor::dense::DenseMatrix;
use cello::tensor::gen::random_graph_adjacency;
use cello::workloads::datasets::CORA;
use cello::workloads::gcn::{build_gcn_dag, gcn_forward, GcnParams};

fn main() {
    // Numeric forward pass on a cora-sized synthetic graph.
    let a = random_graph_adjacency(CORA.m, CORA.nnz, 7);
    let (features, outputs) = (64usize, 7usize); // trimmed features for the demo
    let mut x = DenseMatrix::zeros(CORA.m, features);
    let mut w = DenseMatrix::zeros(features, outputs);
    for i in 0..CORA.m {
        for j in 0..features {
            x.set(i, j, (((i + j) % 13) as f64 - 6.0) / 6.0);
        }
    }
    for i in 0..features {
        for j in 0..outputs {
            w.set(i, j, (((i * 3 + j) % 7) as f64 - 3.0) / 3.0);
        }
    }
    let z = gcn_forward(&a, &x, &w);
    println!(
        "numeric GCN forward: A {}x{} (nnz {}), X {}x{}, W {}x{} -> Z {}x{} (ReLU'd, {} active)",
        a.rows(),
        a.cols(),
        a.nnz(),
        x.rows(),
        x.cols(),
        w.rows(),
        w.cols(),
        z.rows(),
        z.cols(),
        z.data().iter().filter(|&&v| v > 0.0).count()
    );

    // Accelerator study at the full Table VI shape.
    let dag = build_gcn_dag(&GcnParams::from_dataset(&CORA, 1));
    let accel = CelloConfig::paper();
    println!("\n{:12} {:>12} {:>14}", "config", "GFPMuls/s", "DRAM bytes");
    for kind in [
        ConfigKind::Flexagon,
        ConfigKind::FlexLru,
        ConfigKind::Flat,
        ConfigKind::Cello,
    ] {
        let r = run_config(&dag, kind, &accel, "gnn_layer");
        println!(
            "{:12} {:>12.1} {:>14}",
            kind.label(),
            r.gfpmuls_per_sec(),
            r.dram_bytes
        );
    }
    println!("\nexpected: CELLO == FLAT (the Y intermediate pipelines); both beat Flexagon.");
}

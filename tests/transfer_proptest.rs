//! Property tests for overlap-aware DRAM transfer scheduling.
//!
//! Three contracts from the transfer-tuning design:
//!
//! 1. **Roofline sandwich** — prefetch/double-buffering can hide transfer
//!    cycles behind compute but never manufactures bandwidth: an
//!    overlapped schedule's total stays between the aggregate compute
//!    floor and the serialized (transfer-off) total of the same schedule.
//! 2. **Depth-0 identity** — `prefetch_depth == 0` is not "a little
//!    overlap", it is bit-for-bit the pre-overlap serialized model, for
//!    every spelling of "off" (`None`, `TransferTuning::off()`, a
//!    denormalized depth-0 with the double-buffer flag set).
//! 3. **Surrogate ranking** — on widened spaces that include the transfer
//!    menu, the analytic surrogate's *cycle* estimates rank like the
//!    exact simulator's (Spearman >= 0.9), so the prefilter can be
//!    trusted to triage overlapped candidates.

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule_with, ScheduleConstraints, ScheduleOptions};
use cello::core::TransferTuning;
use cello::graph::dag::TensorDag;
use cello::search::{spearman, surrogate_cost, SearchSpace, SpaceConfig};
use cello::sim::evaluate::evaluate_schedule;
use cello::workloads::cg::{build_cg_dag, CgParams};
use proptest::prelude::*;

fn cg(m: u64, iterations: u32) -> TensorDag {
    build_cg_dag(&CgParams {
        m,
        occupancy: 4.0,
        a_payload_words: 2 * 4 * m + m + 1,
        n: 16,
        nprime: 16,
        iterations,
        a_occupancy: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On explicit-backend (no-CHORD) schedules the staging carve cannot
    /// change traffic, so the only thing a transfer tuning may do is hide
    /// cycles: `compute floor <= overlapped <= serialized`, at identical
    /// DRAM bytes, for every depth and both buffering modes.
    #[test]
    fn overlap_stays_in_the_roofline_sandwich(
        m in 20_000u64..120_000,
        iterations in 1u32..5,
        depth in 1u8..6,
        db in any::<bool>(),
    ) {
        let dag = cg(m, iterations);
        let accel = CelloConfig::paper();
        let opts = ScheduleOptions::best_intra();
        let tuning = if db {
            TransferTuning::double_buffered(depth)
        } else {
            TransferTuning::single_buffered(depth)
        };
        let mut constraints = ScheduleConstraints::none();
        let off = evaluate_schedule(
            &dag,
            &build_schedule_with(&dag, opts, &constraints),
            &accel,
        );
        constraints.transfer = Some(tuning);
        let on = evaluate_schedule(
            &dag,
            &build_schedule_with(&dag, opts, &constraints),
            &accel,
        );
        prop_assert_eq!(
            on.dram_bytes, off.dram_bytes,
            "no CHORD => the carve must not move traffic"
        );
        prop_assert!(
            on.cycles <= off.cycles,
            "overlap lost to serial: {} > {} (depth {depth} db {db})",
            on.cycles, off.cycles
        );
        let compute_floor = dag
            .nodes()
            .map(|(_, n)| n.spec.macs())
            .sum::<u64>()
            .div_ceil(accel.pe_count);
        prop_assert!(
            on.cycles >= compute_floor,
            "overlap beat the compute roofline: {} < {compute_floor}",
            on.cycles
        );
    }

    /// Every spelling of "transfers off" replays the serialized model
    /// bit-identically across random widened-space candidates: `None`,
    /// the canonical `off()`, and the denormalized depth-0 carrying a
    /// stale double-buffer flag all produce the same cost vector.
    #[test]
    fn depth_zero_replays_the_serialized_model(
        m in 20_000u64..120_000,
        iterations in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let dag = cg(m, iterations);
        let accel = CelloConfig::paper();
        let space = SearchSpace::from_dag(&dag, &SpaceConfig::widened());
        for picks in space.sample_assignments(6, seed) {
            let mut c = space.assemble(&picks);
            c.constraints.transfer = None;
            let baseline = evaluate_schedule(&dag, &c.build(&dag), &accel);
            for off in [
                TransferTuning::off(),
                TransferTuning {
                    prefetch_depth: 0,
                    double_buffer: true,
                },
            ] {
                c.constraints.transfer = Some(off);
                let replay = evaluate_schedule(&dag, &c.build(&dag), &accel);
                prop_assert_eq!(replay, baseline, "off spelling {:?} diverged", off);
            }
        }
    }

    /// The surrogate's cycle estimates rank transfer-enabled widened
    /// spaces like the exact sim (Spearman >= 0.9) — the contract the
    /// prefilter needs before it may triage overlapped candidates.
    #[test]
    fn surrogate_cycles_rank_transfer_enabled_spaces(
        m in 20_000u64..120_000,
        iterations in 2u32..5,
        seed in 0u64..1_000,
    ) {
        let dag = cg(m, iterations);
        let accel = CelloConfig::paper();
        let cfg = SpaceConfig::widened();
        prop_assert!(
            !cfg.transfer_menu.is_empty(),
            "widened spaces must include the transfer dimension"
        );
        let space = SearchSpace::from_dag(&dag, &cfg);
        let mut est = Vec::new();
        let mut sim = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for picks in space.sample_assignments(32, seed) {
            let schedule = space.assemble(&picks).build(&dag);
            if !seen.insert(cello::search::Candidate::schedule_key(&schedule)) {
                continue;
            }
            est.push(surrogate_cost(&dag, &schedule, &accel).cycles);
            sim.push(evaluate_schedule(&dag, &schedule, &accel).cycles);
        }
        prop_assert!(est.len() >= 8, "degenerate sample: {} distinct", est.len());
        let rho = spearman(&est, &sim);
        prop_assert!(
            rho >= 0.9,
            "m={m} iters={iterations} seed={seed}: cycle rho {rho:.3}"
        );
    }
}

//! Property tests for CHORD: under arbitrary operation sequences, word
//! conservation holds, the RIFF table invariants hold, and PRELUDE-only never
//! writes back (it never evicts).

use cello::core::chord::{Chord, ChordConfig, ChordPolicyKind, RiffPriority};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Produce { words: u64, freq: u32, dist: u32 },
    Fetch { words: u64, freq: u32, dist: u32 },
    Consume { target: usize, last: bool },
    Retire { target: usize },
    Update { target: usize, freq: u32, dist: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..5_000, 0u32..6, 1u32..12).prop_map(|(words, freq, dist)| Op::Produce {
            words,
            freq,
            dist
        }),
        (1u64..5_000, 0u32..6, 1u32..12).prop_map(|(words, freq, dist)| Op::Fetch {
            words,
            freq,
            dist
        }),
        (0usize..32, any::<bool>()).prop_map(|(target, last)| Op::Consume { target, last }),
        (0usize..32).prop_map(|target| Op::Retire { target }),
        (0usize..32, 0u32..6, 1u32..12).prop_map(|(target, freq, dist)| Op::Update {
            target,
            freq,
            dist
        }),
    ]
}

fn run_ops(policy: ChordPolicyKind, capacity: u64, ops: &[Op]) -> Chord {
    let mut chord = Chord::new(ChordConfig {
        capacity_words: capacity,
        word_bytes: 4,
        policy,
        max_entries: 64,
    });
    let mut created: Vec<String> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Produce { words, freq, dist } => {
                let name = format!("P{i}");
                chord.produce(&name, *words, RiffPriority::new(*freq, *dist));
                created.push(name);
            }
            Op::Fetch { words, freq, dist } => {
                let name = format!("F{i}");
                chord.fetch(&name, *words, RiffPriority::new(*freq, *dist));
                created.push(name);
            }
            Op::Consume { target, last } => {
                if created.is_empty() {
                    continue;
                }
                let name = created[target % created.len()].clone();
                if chord.table().get(&name).is_some() {
                    let next = if *last {
                        None
                    } else {
                        Some(RiffPriority::new(1, 3))
                    };
                    chord.consume(&name, next);
                } else {
                    chord.consume_absent(100);
                }
            }
            Op::Retire { target } => {
                if created.is_empty() {
                    continue;
                }
                let name = created[target % created.len()].clone();
                chord.retire(&name);
            }
            Op::Update { target, freq, dist } => {
                if created.is_empty() {
                    continue;
                }
                let name = created[target % created.len()].clone();
                chord.update_priority(&name, RiffPriority::new(*freq, *dist));
            }
        }
        // Invariants must hold after *every* step, not just at the end.
        chord.check_conservation().unwrap();
    }
    chord
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation + table invariants under arbitrary op sequences (full RIFF).
    #[test]
    fn riff_conserves_words(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        capacity in 100u64..20_000,
    ) {
        let chord = run_ops(ChordPolicyKind::PreludeRiff, capacity, &ops);
        prop_assert!(chord.used_words() <= capacity);
    }

    /// PRELUDE-only never evicts, hence never writes back on admission.
    #[test]
    fn prelude_only_never_writes_back_on_admission(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        capacity in 100u64..20_000,
    ) {
        let chord = run_ops(ChordPolicyKind::PreludeOnly, capacity, &ops);
        // All DRAM writes under PRELUDE-only come from produce-time spills,
        // never from evictions: the eviction counters stay zero.
        for e in chord.table().entries() {
            prop_assert_eq!(chord.audit(&e.name).evicted_dirty, 0);
            prop_assert_eq!(chord.audit(&e.name).evicted_clean, 0);
        }
        prop_assert_eq!(chord.stats().writebacks, 0);
    }

    /// Occupancy never exceeds capacity and the resident prefix never exceeds
    /// the tensor size, for every entry, at the end of any sequence.
    #[test]
    fn residency_bounds(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        capacity in 50u64..5_000,
    ) {
        let chord = run_ops(ChordPolicyKind::PreludeRiff, capacity, &ops);
        let mut sum = 0;
        for e in chord.table().entries() {
            prop_assert!(e.resident_words <= e.total_words);
            sum += e.resident_words;
        }
        prop_assert_eq!(sum, chord.used_words());
        prop_assert!(chord.table().len() <= 64);
    }

    /// A produce that fits entirely (no contention) never spills, and a
    /// subsequent consume hits every word.
    #[test]
    fn fitting_produce_never_spills(words in 1u64..1_000) {
        let mut chord = Chord::new(ChordConfig {
            capacity_words: 1_000,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: 64,
        });
        let spill = chord.produce("T", words, RiffPriority::new(1, 1));
        prop_assert_eq!(spill, 0);
        let r = chord.consume("T", None);
        prop_assert_eq!(r.hit_words, words);
        prop_assert_eq!(r.miss_words, 0);
        prop_assert_eq!(chord.stats().dram_bytes(), 0);
    }

    /// RIFF never evicts a tensor with higher priority than the requester:
    /// after any sequence, if a weak newcomer spilled, every resident tensor
    /// outranks it.
    #[test]
    fn weak_tensors_cannot_displace_strong(
        strong_n in 1usize..8,
        words in 200u64..800,
    ) {
        let mut chord = Chord::new(ChordConfig {
            capacity_words: 1_000,
            word_bytes: 4,
            policy: ChordPolicyKind::PreludeRiff,
            max_entries: 64,
        });
        for i in 0..strong_n {
            chord.produce(&format!("S{i}"), words / strong_n as u64, RiffPriority::new(5, 1));
        }
        let before: u64 = chord.table().entries().iter()
            .filter(|e| e.name.starts_with('S')).map(|e| e.resident_words).sum();
        chord.produce("weak", 2_000, RiffPriority::new(1, 11));
        let after: u64 = chord.table().entries().iter()
            .filter(|e| e.name.starts_with('S')).map(|e| e.resident_words).sum();
        prop_assert_eq!(before, after, "strong residents must be untouched");
        chord.check_conservation().unwrap();
    }
}

//! Property and acceptance tests for the observability layer: histogram
//! percentile ordering and merge algebra, Chrome-trace export validity for
//! nested span trees, and the end-to-end `cello_run --trace-out` invariants
//! (phase spans tile the model-time root; `dram_bytes` args are verbatim
//! `RunReport::phase_dram_bytes`).

use cello::obs::metrics::HistogramSnapshot;
use cello::obs::{ArgValue, SpanNode};
use cello_bench::json::Json;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Percentiles come back ordered and clamped to the observed range:
    /// `min ≤ p50 ≤ p95 ≤ p99 ≤ max` for any non-empty sample.
    #[test]
    fn percentiles_are_bounded_and_monotone(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut h = HistogramSnapshot::empty();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        prop_assert!(lo <= p50, "min {lo} > p50 {p50}");
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
        prop_assert!(p99 <= hi, "p99 {p99} > max {hi}");
    }

    /// Merge is associative and commutative (shard-and-merge aggregation is
    /// order-independent), and matches recording the union directly.
    #[test]
    fn merge_is_associative_and_order_free(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
        c in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let snap = |values: &[u64]| {
            let mut h = HistogramSnapshot::empty();
            for &v in values {
                h.record(v);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let mut left = snap(&a);
        left.merge(&snap(&b));
        left.merge(&snap(&c));
        // a ⊕ (b ⊕ c)
        let mut bc = snap(&b);
        bc.merge(&snap(&c));
        let mut right = snap(&a);
        right.merge(&bc);
        // b ⊕ a ⊕ c (commuted)
        let mut commuted = snap(&b);
        commuted.merge(&snap(&a));
        commuted.merge(&snap(&c));
        // The union recorded flat.
        let union: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let flat = snap(&union);
        for h in [&left, &right, &commuted] {
            prop_assert_eq!(h.count, flat.count);
            prop_assert_eq!(h.sum, flat.sum);
            prop_assert_eq!(h.min, flat.min);
            prop_assert_eq!(h.max, flat.max);
            prop_assert_eq!(&h.counts[..], &flat.counts[..]);
        }
    }
}

/// Walks a parsed Chrome trace document, returning every event object.
fn trace_events(doc: &Json) -> Vec<&Json> {
    let Json::Obj(fields) = doc else {
        panic!("trace root must be an object");
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let Json::Arr(items) = events else {
        panic!("traceEvents must be an array");
    };
    items.iter().collect()
}

fn field<'a>(event: &'a Json, key: &str) -> &'a Json {
    let Json::Obj(fields) = event else {
        panic!("event must be an object");
    };
    &fields.iter().find(|(k, _)| k == key).expect(key).1
}

/// A nested span tree exports one complete (`"ph": "X"`) event per node,
/// with every event of a tree sharing the root's pid/tid — parseable by the
/// same vendored JSON reader the bench artifacts use.
#[test]
fn nested_span_tree_exports_valid_chrome_trace() {
    let mut root = SpanNode::new("request").arg("id", 7u64);
    root.ts_us = 0.0;
    root.dur_us = 1000.0;
    let mut tune = SpanNode::new("tune").arg("strategy", "beam8");
    tune.ts_us = 100.0;
    tune.dur_us = 800.0;
    let mut eval = SpanNode::new("evaluate");
    eval.ts_us = 150.0;
    eval.dur_us = 500.0;
    tune.children.push(eval);
    root.children.push(tune);
    let mut respond = SpanNode::new("respond");
    respond.ts_us = 900.0;
    respond.dur_us = 100.0;
    root.children.push(respond);

    let trace = cello::obs::chrome::chrome_trace(&[root]);
    let doc = Json::parse(&trace).expect("chrome trace parses with cello_bench::json");
    let events = trace_events(&doc);
    assert_eq!(events.len(), 4, "one event per span node");
    let mut names = Vec::new();
    for event in &events {
        assert_eq!(field(event, "ph"), &Json::Str("X".into()));
        assert_eq!(field(event, "pid"), &Json::Num(1.0));
        // All nodes of one tree share the root's lane; viewers nest the
        // children by interval containment.
        assert_eq!(field(event, "tid"), &Json::Num(1.0));
        let Json::Str(name) = field(event, "name") else {
            panic!("name must be a string");
        };
        names.push(name.clone());
    }
    for expected in ["request", "tune", "evaluate", "respond"] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
    // Args survive the round trip.
    assert!(trace.contains("\"strategy\": \"beam8\""), "{trace}");
}

/// Two roots land in two lanes (tid 1 and 2) of the same process.
#[test]
fn sibling_roots_get_distinct_lanes() {
    let mut a = SpanNode::new("cello:cg");
    a.dur_us = 10.0;
    let mut b = SpanNode::new("flat:cg");
    b.dur_us = 20.0;
    let trace = cello::obs::chrome::chrome_trace(&[a, b]);
    let doc = Json::parse(&trace).unwrap();
    let events = trace_events(&doc);
    let tids: Vec<f64> = events
        .iter()
        .map(|e| {
            let Json::Num(tid) = field(e, "tid") else {
                panic!("tid must be a number");
            };
            *tid
        })
        .collect();
    assert_eq!(tids, vec![1.0, 2.0]);
}

/// The `cello_run --trace-out` acceptance bar, end to end through the
/// public facade: per-phase span durations sum to the root (the
/// cycles-model wall time) within 1%, and each phase's `dram_bytes` arg
/// equals `RunReport::phase_dram_bytes` exactly.
#[test]
fn cg_trace_spans_match_the_report() {
    use cello::core::accel::CelloConfig;
    use cello::sim::baselines::run_config;
    use cello::sim::ConfigKind;
    use cello::workloads::cg::{build_cg_dag, CgParams};

    let dag = build_cg_dag(&CgParams::from_dataset(
        &cello::workloads::datasets::FV1,
        16,
        2,
    ));
    let accel = CelloConfig::paper();
    let report = run_config(&dag, ConfigKind::Cello, &accel, "cg");
    let span = cello::sim::obs::report_span(&report, &accel);

    assert_eq!(span.children.len(), report.phase_cycles.len());
    assert!((span.dur_us - report.seconds * 1e6).abs() < 1e-6);
    let sum: f64 = span.children.iter().map(|c| c.dur_us).sum();
    assert!(
        (sum - span.dur_us).abs() <= span.dur_us * 0.01,
        "phase spans sum to {sum} µs but the run took {} µs",
        span.dur_us
    );
    for (i, child) in span.children.iter().enumerate() {
        assert_eq!(
            child.get_arg("dram_bytes"),
            Some(&ArgValue::U64(report.phase_dram_bytes[i])),
            "phase {i} dram_bytes arg must be verbatim"
        );
    }
    // And the exported trace is valid JSON carrying those args.
    let trace = cello::obs::chrome::chrome_trace(&[span]);
    let doc = Json::parse(&trace).expect("trace parses");
    assert!(trace_events(&doc).len() > report.phase_cycles.len());
}

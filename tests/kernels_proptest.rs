//! Property tests on the numeric substrate: kernels agree with naive
//! references on random inputs, and the solvers actually solve.

use cello::tensor::dense::DenseMatrix;
use cello::tensor::gen::random_spd;
use cello::tensor::kernels::{gemm, gemm_at_b, gemm_naive, invert_small, spmm};
use cello::tensor::layout::Layout;
use cello::tensor::sparse::CooMatrix;
use cello::workloads::bicgstab::solve_bicgstab;
use cello::workloads::cg::solve_block_cg;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked/parallel GEMM ≡ naive GEMM, in any layout combination.
    #[test]
    fn gemm_equals_naive(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        a_col in any::<bool>(), b_col in any::<bool>(),
        seed_a in proptest::collection::vec(-2.0f64..2.0, 144),
        seed_b in proptest::collection::vec(-2.0f64..2.0, 144),
    ) {
        let a0 = DenseMatrix::from_rows(m, k, &seed_a[..m * k]);
        let b0 = DenseMatrix::from_rows(k, n, &seed_b[..k * n]);
        let a = if a_col { a0.to_layout(Layout::ColMajor) } else { a0 };
        let b = if b_col { b0.to_layout(Layout::ColMajor) } else { b0 };
        let fast = gemm(&a, &b);
        let slow = gemm_naive(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-10);
    }

    /// AᵀB contraction ≡ transpose-then-naive.
    #[test]
    fn contraction_equals_transpose(
        k in 1usize..20, p in 1usize..6, n in 1usize..6,
        data_a in proptest::collection::vec(-2.0f64..2.0, 120),
        data_b in proptest::collection::vec(-2.0f64..2.0, 120),
    ) {
        let a = DenseMatrix::from_rows(k, p, &data_a[..k * p]);
        let b = DenseMatrix::from_rows(k, n, &data_b[..k * n]);
        let direct = gemm_at_b(&a, &b);
        let reference = gemm_naive(&a.transpose(), &b);
        prop_assert!(direct.max_abs_diff(&reference) < 1e-10);
    }

    /// SpMM over a random sparse pattern ≡ dense GEMM of its densification.
    #[test]
    fn spmm_equals_dense(
        rows in 1usize..15, cols in 1usize..15, n in 1usize..5,
        entries in proptest::collection::vec((0usize..15, 0usize..15, -2.0f64..2.0), 0..40),
        dense_data in proptest::collection::vec(-2.0f64..2.0, 75),
    ) {
        let mut coo = CooMatrix::new(rows, cols);
        for (r, c, v) in entries {
            coo.push(r % rows, c % cols, v);
        }
        let a = coo.to_csr();
        let p = DenseMatrix::from_rows(cols, n, &dense_data[..cols * n]);
        let sparse = spmm(&a, &p);
        let dense = gemm_naive(&a.to_dense(), &p);
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-10);
    }

    /// Gauss–Jordan inverse: A · A⁻¹ ≈ I for diagonally dominant A.
    #[test]
    fn inverse_round_trip(
        n in 1usize..8,
        data in proptest::collection::vec(-1.0f64..1.0, 64),
    ) {
        let mut a = DenseMatrix::from_rows(n, n, &data[..n * n]);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64 + 1.0);
        }
        let inv = invert_small(&a).expect("diagonally dominant is invertible");
        let prod = gemm_naive(&a, &inv);
        prop_assert!(prod.max_abs_diff(&DenseMatrix::identity(n)) < 1e-8);
    }

    /// Block CG solves random SPD systems: ‖A·X − B‖∞ small after convergence.
    #[test]
    fn block_cg_solves_random_spd(
        m in 20usize..60,
        nrhs in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let a = random_spd(m, m * 4, seed);
        let mut b = DenseMatrix::zeros(m, nrhs);
        for i in 0..m {
            for j in 0..nrhs {
                b.set(i, j, (((i * 31 + j * 17 + seed as usize) % 23) as f64 - 11.0) / 11.0);
            }
        }
        let res = solve_block_cg(&a, &b, 300, 1e-22);
        let ax = spmm(&a, &res.x);
        // Relative residual: random SPD systems can be ill-conditioned, so
        // the achievable floor scales with cond(A)·eps.
        let bnorm = b.frobenius_norm().max(1e-30);
        let rel = ax.max_abs_diff(&b) / bnorm;
        prop_assert!(rel < 1e-4, "relative residual {rel}");
    }

    /// BiCGStab solves the same systems (single RHS).
    #[test]
    fn bicgstab_solves_random_spd(m in 20usize..60, seed in 0u64..1_000) {
        let a = random_spd(m, m * 4, seed);
        let mut b = DenseMatrix::zeros(m, 1);
        for i in 0..m {
            b.set(i, 0, (((i * 13 + seed as usize) % 19) as f64 - 9.0) / 9.0);
        }
        let res = solve_bicgstab(&a, &b, 400, 1e-12);
        let ax = spmm(&a, &res.x);
        let bnorm = b.frobenius_norm().max(1e-30);
        let rel = ax.max_abs_diff(&b) / bnorm;
        prop_assert!(rel < 1e-4, "relative residual {rel}");
    }
}

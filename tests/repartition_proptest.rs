//! Property tests locking down the per-phase SRAM repartition.
//!
//! The repartition widens the co-design space (per-phase pipeline/RF/CHORD
//! splits instead of one global compromise), so three invariants keep the
//! two-tier DSE honest as it grows:
//!
//! 1. **Differential**: a *uniform* per-phase split is bit-exact with
//!    today's global split — engine `CostEstimate` and surrogate score both
//!    — across random CG/HPCG/GCN schedules, so the refactor cannot
//!    silently drift the baseline.
//! 2. **Dominance**: exhaustive search over the widened space (per-phase ⊇
//!    global: "no repartition" is always choice 0) never lands on worse
//!    total traffic than the best global split on the same menus.
//! 3. **Monotonicity**: growing one phase's CHORD share (shrinking its
//!    pipeline reservation, bindings held fixed) never increases that
//!    phase's DRAM traffic — nor the schedule's total — on solo-phase
//!    chains, where residency transfers cleanly across boundaries.
//!
//! Plus the pinned acceptance claim: on a mixed DAG (wide-row fused
//! pipeline cluster + CHORD-heavy solo clusters re-reading a near-SRAM-sized
//! external), beam search with per-phase splits beats the best global-split
//! schedule of the same space by ≥ 5% total traffic.

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule_with, ScheduleConstraints, ScheduleOptions};
use cello::core::{PhaseRepartition, PhaseSplit};
use cello::graph::dag::TensorDag;
use cello::graph::edge::TensorMeta;
use cello::graph::node::OpKind;
use cello::search::{surrogate_cost, SearchSpace, SpaceConfig, Strategy, Tuner};
use cello::sim::evaluate::evaluate_schedule;
use cello::tensor::einsum::EinsumSpec;
use cello::tensor::shape::RankExtent;
use cello::workloads::cg::{build_cg_dag, CgParams};
use cello::workloads::datasets::CORA;
use cello::workloads::gcn::{build_gcn_dag, GcnParams};
use cello::workloads::hpcg::{build_hpcg_dag, HpcgParams};
use proptest::prelude::*;

/// For every seeded-random candidate of the widened space: rebuilding it
/// with a *uniform* repartition (every phase = the candidate's own global
/// split, expressed both by-kind and by-index) must reproduce the exact
/// engine `CostEstimate` and the exact surrogate score. Bit-exact means
/// `==` on every field, energy included.
fn assert_uniform_differential(dag: &TensorDag, accel: &CelloConfig, samples: usize, seed: u64) {
    let space = SearchSpace::from_dag(dag, &SpaceConfig::widened());
    for picks in space.sample_assignments(samples, seed) {
        let candidate = space.assemble(&picks);
        let plain = candidate.build(dag);
        let global = PhaseSplit::of_options(&candidate.options);
        let by_kind =
            PhaseRepartition::by_kind(accel.sram_words(), global, global).expect("global fits");
        let by_index = PhaseRepartition::by_index(
            accel.sram_words(),
            (0..plain.phases.len()).map(|i| (i, global)).collect(),
        )
        .expect("global fits");
        for rep in [by_kind, by_index] {
            let mut c2 = candidate.clone();
            c2.constraints.phase_repartition = Some(rep);
            let uniform = c2.build(dag);
            assert!(!uniform.repartition_active(), "uniform = global identity");
            assert_eq!(
                evaluate_schedule(dag, &plain, accel),
                evaluate_schedule(dag, &uniform, accel),
                "engine drifted under a uniform repartition"
            );
            assert_eq!(
                surrogate_cost(dag, &plain, accel),
                surrogate_cost(dag, &uniform, accel),
                "surrogate drifted under a uniform repartition"
            );
        }
    }
}

/// A solo-phase chain (cuts everywhere): tensors hand off cleanly between
/// adjacent phases, the shape the per-phase monotonicity argument is exact
/// on.
fn chain(n_ops: usize, words: u64) -> TensorDag {
    let spec = EinsumSpec::parse(
        "mk,kn->mn",
        &[
            RankExtent::dense("m", words / 16),
            RankExtent::dense("k", 16),
            RankExtent::dense("n", 16),
        ],
    );
    let mut dag = TensorDag::new();
    let mut prev = None;
    for i in 0..n_ops {
        let id = dag.add_op(
            format!("op{i}"),
            spec.clone(),
            OpKind::TensorMac,
            TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
        );
        if let Some(p) = prev {
            dag.add_edge(p, id, &["m", "k"]);
        } else {
            dag.add_external(
                TensorMeta::dense("In", &["m", "k"], words),
                &[(id, &["m", "k"])],
            );
        }
        prev = Some(id);
    }
    dag
}

/// The mixed DAG of the pinned acceptance test: a wide-row fused pipeline
/// region (block-row tensors whose streaming rows overflow a lean pipeline
/// buffer) contracted into a scalar seed that drives `reuses` solo phases,
/// each re-reading a near-SRAM-sized external `E`. A pipeline-heavy fused
/// cluster and CHORD-heavy solo clusters in one DAG — the shape a single
/// global SRAM split must compromise on.
fn mixed_dag(rows: u64, row_words: u64, e_words: u64, reuses: usize) -> TensorDag {
    let words = rows * row_words;
    let wide = EinsumSpec::parse(
        "mk,kn->mn",
        &[
            RankExtent::dense("m", rows),
            RankExtent::dense("k", 16),
            RankExtent::dense("n", 16),
        ],
    );
    let contract = EinsumSpec::from_parts(
        vec![vec!["k".into(), "p".into()], vec!["k".into(), "n".into()]],
        vec!["p".into(), "n".into()],
        &[
            RankExtent::dense("k", rows),
            RankExtent::dense("p", 16),
            RankExtent::dense("n", 16),
        ],
    );
    let small = EinsumSpec::parse(
        "pj,jn->pn",
        &[
            RankExtent::dense("p", 16),
            RankExtent::dense("j", 16),
            RankExtent::dense("n", 16),
        ],
    );
    let mut dag = TensorDag::new();
    let big = |n: &str| TensorMeta::dense(n, &["m", "n"], words);
    let tiny = |n: &str| TensorMeta::dense(n, &["p", "n"], 256);
    let a0 = dag.add_op("a0", wide.clone(), OpKind::TensorMac, big("T0"));
    let a1 = dag.add_op("a1", wide, OpKind::TensorMac, big("T1"));
    let a2 = dag.add_op("a2", contract, OpKind::TensorMac, tiny("S"));
    dag.add_edge(a0, a1, &["m", "k"]);
    dag.add_edge(a1, a2, &["k", "n"]);
    dag.add_external(
        TensorMeta::dense("In", &["m", "k"], words),
        &[(a0, &["m", "k"])],
    );
    let mut prev = a2;
    let mut consumers: Vec<(cello::graph::dag::NodeId, &[&str])> = Vec::new();
    for i in 0..reuses {
        // Inverse ops never join pipeline clusters: each solo phase re-reads
        // E from CHORD.
        let b = dag.add_op(
            format!("b{i}"),
            small.clone(),
            OpKind::Inverse,
            tiny(&format!("B{i}")),
        );
        dag.add_edge(prev, b, &["p", "j"]);
        consumers.push((b, &["m", "k"]));
        prev = b;
    }
    dag.add_external(TensorMeta::dense("E", &["m", "k"], e_words), &consumers);
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Differential on random CG schedules (problem size, iteration count,
    /// sample seed all drawn).
    #[test]
    fn uniform_split_bit_exact_on_cg(
        m in 20_000u64..120_000,
        iterations in 2u32..5,
        seed in 0u64..1_000,
    ) {
        let dag = build_cg_dag(&CgParams {
            m,
            occupancy: 4.0,
            a_payload_words: 2 * 4 * m + m + 1,
            n: 16,
            nprime: 16,
            iterations,
            a_occupancy: None,
        });
        assert_uniform_differential(&dag, &CelloConfig::paper(), 8, seed);
    }

    /// Differential on random HPCG schedules.
    #[test]
    fn uniform_split_bit_exact_on_hpcg(
        nx in 24u64..56,
        iterations in 2u32..4,
        seed in 0u64..1_000,
    ) {
        let dag = build_hpcg_dag(&HpcgParams { nx, n: 16, iterations });
        assert_uniform_differential(&dag, &CelloConfig::paper(), 8, seed);
    }

    /// Differential on random GCN schedules.
    #[test]
    fn uniform_split_bit_exact_on_gcn(
        layers in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let dag = build_gcn_dag(&GcnParams::from_dataset(&CORA, layers));
        assert_uniform_differential(&dag, &CelloConfig::paper(), 8, seed);
    }

    /// Dominance: the repartitioned space contains every global-split
    /// schedule ("no repartition" is choice 0), so exhaustive search over it
    /// can never end up with worse best-traffic than exhaustive search over
    /// the global-only space with the same menus.
    #[test]
    fn repartitioned_space_dominates_global(
        m in 20_000u64..80_000,
        iterations in 2u32..4,
    ) {
        let dag = build_cg_dag(&CgParams {
            m,
            occupancy: 4.0,
            a_payload_words: 2 * 4 * m + m + 1,
            n: 16,
            nprime: 16,
            iterations,
            a_occupancy: None,
        });
        let accel = CelloConfig::paper();
        let small = SpaceConfig {
            max_cut_points: 1,
            max_steer_tensors: 1,
            max_loop_order_nodes: 0,
            pipeline_words_choices: vec![65_536, 16_384],
            rf_words_choices: vec![16_384],
            node_choices: vec![1],
            max_chord_bias_tensors: 0,
            chord_bias_magnitudes: vec![1],
            repartition_profiles: Vec::new(),
            transfer_menu: Vec::new(),
            overbook_menu: Vec::new(),
        };
        let global = Tuner::new(&dag, &accel, small.clone()).tune(&Strategy::Exhaustive);
        let widened = small.with_repartition(accel.sram_words());
        let pp = Tuner::new(&dag, &accel, widened).tune(&Strategy::Exhaustive);
        prop_assert!(
            pp.best_traffic.cost.total_traffic_bytes()
                <= global.best_traffic.cost.total_traffic_bytes(),
            "per-phase exhaustive {} worse than global exhaustive {}",
            pp.best_traffic.cost.total_traffic_bytes(),
            global.best_traffic.cost.total_traffic_bytes(),
        );
    }

    /// Monotonicity: on a solo-phase chain, growing one phase's CHORD share
    /// (shrinking only its pipeline reservation; RF held at the global value
    /// so bindings cannot move) never increases that phase's DRAM traffic,
    /// nor the schedule's total.
    #[test]
    fn growing_phase_chord_share_is_monotone(
        n_ops in 3usize..6,
        words in 50_000u64..400_000,
        phase in 1usize..5,
        reserve_big in 1u32..9,
        shrink in 1u32..8,
    ) {
        let n_ops = n_ops.max(phase + 1);
        let dag = chain(n_ops, (words / 16) * 16);
        let accel = CelloConfig::paper();
        let cuts: std::collections::BTreeSet<usize> = (1..n_ops).collect();
        let opts = ScheduleOptions::cello();
        let rf = opts.rf_capacity_words;
        let budget = accel.sram_words() - rf;
        // Two reservations for the chosen phase: big, and strictly smaller
        // (more CHORD share). Everything else keeps the global split.
        let big = budget / 10 * reserve_big as u64;
        let small = big.saturating_sub(budget / 10 * shrink.min(reserve_big) as u64);
        let run = |reserve: u64| {
            let rep = PhaseRepartition::by_index(
                accel.sram_words(),
                [(phase, PhaseSplit::new(reserve, rf))].into_iter().collect(),
            )
            .expect("fits");
            let s = build_schedule_with(
                &dag,
                opts,
                &ScheduleConstraints {
                    cut_before: cuts.clone(),
                    phase_repartition: Some(rep),
                    ..Default::default()
                },
            );
            s.validate(&dag).unwrap();
            cello::sim::evaluate::evaluate_report(&dag, &s, &accel)
        };
        let (base, grown) = (run(big), run(small));
        prop_assert!(
            grown.phase_dram_bytes[phase] <= base.phase_dram_bytes[phase],
            "phase {phase} dram grew: {} > {}",
            grown.phase_dram_bytes[phase],
            base.phase_dram_bytes[phase],
        );
        prop_assert!(
            grown.dram_bytes <= base.dram_bytes,
            "total dram grew: {} > {}",
            grown.dram_bytes,
            base.dram_bytes,
        );
    }
}

/// The pinned acceptance claim: beam over the repartitioned space finds a
/// schedule with ≥ 5% lower total traffic than the best global split of the
/// same space on the mixed DAG, and the winner actually repartitions.
#[test]
fn beam_with_per_phase_splits_beats_best_global_by_5pct() {
    let dag = mixed_dag(160, 12_800, 1_040_000, 6);
    let accel = CelloConfig::paper();
    let base_cfg = SpaceConfig::default();
    let global = Tuner::new(&dag, &accel, base_cfg.clone()).tune(&Strategy::Exhaustive);
    let pp_cfg = base_cfg.with_repartition(accel.sram_words());
    let pp = Tuner::new(&dag, &accel, pp_cfg).tune(&Strategy::Beam { width: 8 });
    let g = global.best_traffic.cost.total_traffic_bytes();
    let p = pp.best_traffic.cost.total_traffic_bytes();
    assert!(
        (p as f64) <= 0.95 * g as f64,
        "per-phase beam {p} not ≥5% below best global {g} ({:.4}x)",
        p as f64 / g as f64,
    );
    let winner = &pp.best_traffic.candidate;
    let rep = winner
        .constraints
        .phase_repartition
        .as_ref()
        .expect("winner repartitions");
    rep.validate().unwrap();
    let schedule = winner.build(&dag);
    schedule.validate(&dag).unwrap();
    assert!(schedule.repartition_active());
    // The mixed DAG really is mixed: a fused pipeline cluster and solo
    // CHORD phases coexist, and the winning repartition treats them
    // differently.
    assert!(schedule.phases.iter().any(|p| p.ops.len() > 1));
    assert!(schedule.phases.iter().any(|p| p.ops.len() == 1));
    let splits: std::collections::BTreeSet<_> = schedule
        .phase_splits
        .iter()
        .map(|s| (s.pipeline_buffer_words, s.rf_capacity_words))
        .collect();
    assert!(splits.len() > 1, "winner uses phase-dependent splits");
}

//! Property tests for the sliding-window metrics layer and the Prometheus
//! exposition it feeds.
//!
//! The window cores ([`WindowHistogram`], [`WindowCounter`]) promise an
//! algebra, not just behavior: slot merge is "newer epoch wins, equal
//! epochs combine" — associative and commutative, so shard-and-merge
//! aggregation is order-independent — and an expired slot can never
//! resurrect, no matter how late a sample or a merge arrives. These tests
//! pin that algebra against an executable reference model, and pin the
//! text exposition against the format's grammar under adversarial metric
//! names (newlines, quotes, backslashes, leading digits, unicode).

use cello::obs::metrics::{HistogramSnapshot, Registry};
use cello::obs::window::{WindowCounter, WindowHistogram};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// `(epoch, value)` observation streams with enough epoch collisions (per
/// slot and exact) to exercise every branch of `slot_mut`.
fn arb_ops() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..24, 0u64..10_000), 0..48)
}

/// The reference model of a [`WindowHistogram`]: each slot is won by the
/// largest epoch that ever mapped to it, and holds exactly the samples
/// stamped with that epoch — arrival order is irrelevant. `snapshot_at`
/// then merges the slots whose winning epoch lies in `(now − len, now]`.
fn model_snapshot(len: u64, ops: &[(u64, u64)], now: u64) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::empty();
    for slot in 0..len {
        let winner = ops
            .iter()
            .filter(|(e, _)| e % len == slot)
            .map(|&(e, _)| e)
            .max();
        let Some(winner) = winner else { continue };
        if winner <= now && winner.saturating_add(len) > now {
            for &(_, v) in ops.iter().filter(|&&(e, _)| e == winner) {
                out.record(v);
            }
        }
    }
    out
}

fn replay(len: usize, ops: &[(u64, u64)]) -> WindowHistogram {
    let mut w = WindowHistogram::new(len);
    for &(e, v) in ops {
        w.record_at(e, v);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The window matches the reference model at every `now` — one
    /// property covering expiry (old epochs leave the snapshot), slot
    /// reset (a newer epoch evicts the slot's contents), and
    /// never-resurrect (a late sample from a beaten epoch vanishes
    /// without a trace, regardless of where it sat in the stream).
    #[test]
    fn window_histogram_matches_the_reference_model(
        len in 1usize..8,
        ops in arb_ops(),
    ) {
        let w = replay(len, &ops);
        for now in 0..32u64 {
            prop_assert_eq!(
                w.snapshot_at(now),
                model_snapshot(len as u64, &ops, now),
                "len {} now {} ops {:?}", len, now, &ops
            );
        }
    }

    /// Merging two windows is indistinguishable from replaying the
    /// concatenated observation streams into one window: the merge moves
    /// whole slots, but slot-wise "newer wins, equal combine" makes that
    /// equal to the sample-level model. In particular a merge can never
    /// resurrect samples the destination already expired.
    #[test]
    fn window_merge_equals_replaying_the_union(
        len in 1usize..8,
        a in arb_ops(),
        b in arb_ops(),
    ) {
        let mut merged = replay(len, &a);
        merged.merge(&replay(len, &b));
        let union: Vec<(u64, u64)> = a.iter().chain(&b).copied().collect();
        for now in 0..32u64 {
            prop_assert_eq!(
                merged.snapshot_at(now),
                model_snapshot(len as u64, &union, now),
                "len {} now {}", len, now
            );
        }
    }

    /// Merge is associative and commutative, observed through every
    /// snapshot horizon: `(a ⊕ b) ⊕ c`, `a ⊕ (b ⊕ c)`, and `(c ⊕ b) ⊕ a`
    /// agree everywhere, so shards can aggregate in any grouping.
    #[test]
    fn window_histogram_merge_is_associative_and_commutative(
        len in 1usize..8,
        a in arb_ops(),
        b in arb_ops(),
        c in arb_ops(),
    ) {
        let (wa, wb, wc) = (replay(len, &a), replay(len, &b), replay(len, &c));
        // (a ⊕ b) ⊕ c
        let mut left = wa.clone();
        left.merge(&wb);
        left.merge(&wc);
        // a ⊕ (b ⊕ c)
        let mut bc = wb.clone();
        bc.merge(&wc);
        let mut right = wa.clone();
        right.merge(&bc);
        // (c ⊕ b) ⊕ a
        let mut commuted = wc.clone();
        commuted.merge(&wb);
        commuted.merge(&wa);
        for now in 0..32u64 {
            let want = left.snapshot_at(now);
            prop_assert_eq!(&right.snapshot_at(now), &want, "assoc, now {}", now);
            prop_assert_eq!(&commuted.snapshot_at(now), &want, "comm, now {}", now);
        }
    }

    /// The counter window has the same algebra with full structural
    /// equality (`WindowCounter: Eq`), plus the totals contract: the
    /// window total at `now` counts exactly the slot-winning events in
    /// `(now − len, now]`.
    #[test]
    fn window_counter_merge_is_associative_and_commutative(
        len in 1usize..8,
        a in arb_ops(),
        b in arb_ops(),
        c in arb_ops(),
    ) {
        let count = |ops: &[(u64, u64)]| {
            let mut w = WindowCounter::new(len);
            for &(e, n) in ops {
                w.add_at(e, n % 64);
            }
            w
        };
        let (wa, wb, wc) = (count(&a), count(&b), count(&c));
        let mut left = wa.clone();
        left.merge(&wb);
        left.merge(&wc);
        let mut bc = wb.clone();
        bc.merge(&wc);
        let mut right = wa.clone();
        right.merge(&bc);
        let mut commuted = wc.clone();
        commuted.merge(&wb);
        commuted.merge(&wa);
        prop_assert_eq!(&left, &right, "assoc");
        prop_assert_eq!(&left, &commuted, "comm");

        // Totals against the sample-level model on the union stream.
        let union: Vec<(u64, u64)> = a.iter().chain(&b).chain(&c).copied().collect();
        for now in 0..32u64 {
            let model: u64 = (0..len as u64)
                .filter_map(|slot| {
                    let winner = union
                        .iter()
                        .filter(|(e, _)| e % len as u64 == slot)
                        .map(|&(e, _)| e)
                        .max()?;
                    (winner <= now && winner.saturating_add(len as u64) > now).then(|| {
                        union
                            .iter()
                            .filter(|&&(e, _)| e == winner)
                            .map(|&(_, n)| n % 64)
                            .sum::<u64>()
                    })
                })
                .sum();
            prop_assert_eq!(left.total_at(now), model, "now {}", now);
        }
    }
}

// ---------------------------------------------------------------------------
// Prometheus exposition under adversarial names.
// ---------------------------------------------------------------------------

/// Metric names drawn from a hostile alphabet: exposition-format
/// metacharacters (newline, quote, backslash, braces, spaces), leading
/// digits, unicode — everything `prom_name`/`prom_escape` exist to defuse.
/// The vendored proptest has no string strategies, so names are built by
/// mapping byte vectors through the alphabet.
fn arb_name() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &[
        'a', 'Z', '_', ':', '7', '0', '-', '.', '"', '\\', '\n', ' ', '{', '}', '=', 'µ', '/', '#',
    ];
    proptest::collection::vec(any::<u8>(), 0..12).prop_map(|bytes| {
        bytes
            .iter()
            .map(|&b| ALPHABET[b as usize % ALPHABET.len()])
            .collect()
    })
}

/// True iff `name` is a valid exposition metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Line-validates a scrape and checks histogram bucket series: every line
/// is a well-formed comment or sample, every sample name is in the metric
/// charset, `_bucket` series are cumulative non-decreasing, and the
/// `+Inf` bucket equals the family's `_count`.
fn validate_exposition(text: &str) -> Result<(), String> {
    let mut bucket_values: Vec<u64> = Vec::new();
    let mut inf_bucket: Option<u64> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            if keyword != "HELP" && keyword != "TYPE" {
                return Err(format!("unknown comment keyword in {line:?}"));
            }
            if !valid_metric_name(name) {
                return Err(format!("invalid name {name:?} in {line:?}"));
            }
            if keyword == "TYPE" {
                let kind = parts.next().unwrap_or("");
                if !["counter", "gauge", "histogram", "summary"].contains(&kind) {
                    return Err(format!("unknown type {kind:?} in {line:?}"));
                }
                if kind == "histogram" {
                    bucket_values.clear();
                    inf_bucket = None;
                }
            }
            continue;
        }
        // Sample line: `name value` or `name{labels} value`.
        let Some((series, value)) = line.rsplit_once(' ') else {
            return Err(format!("sample line without value: {line:?}"));
        };
        value
            .parse::<f64>()
            .map_err(|_| format!("non-numeric value {value:?} in {line:?}"))?;
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("unclosed label set in {line:?}"));
                }
                name
            }
            None => series,
        };
        if !valid_metric_name(name) {
            return Err(format!("invalid sample name {name:?} in {line:?}"));
        }
        // Histogram family checks ride on the renderer's contiguity: each
        // family's `_bucket` lines run unbroken into `_sum`/`_count`.
        if series.contains("_bucket{le=\"+Inf\"}") {
            inf_bucket = Some(value.parse::<u64>().unwrap());
        } else if series.contains("_bucket{le=") {
            let v = value.parse::<u64>().unwrap();
            if bucket_values.last().is_some_and(|&prev| v < prev) {
                return Err(format!("bucket series not cumulative at {line:?}"));
            }
            bucket_values.push(v);
        } else if let (true, Some(inf)) = (name.ends_with("_count"), inf_bucket) {
            let count = value.parse::<u64>().unwrap();
            if inf != count {
                return Err(format!("+Inf bucket {inf} != _count {count} for {name:?}"));
            }
            if bucket_values.last().is_some_and(|&prev| prev > inf) {
                return Err(format!("largest finite bucket exceeds +Inf for {name:?}"));
            }
            bucket_values.clear();
            inf_bucket = None;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A scrape rendered from adversarially-named instruments is still a
    /// well-formed exposition document: no raw newline or quote ever
    /// splits a line, every family keeps the metric-name charset, and
    /// histogram bucket series stay cumulative with `+Inf == _count`.
    #[test]
    fn prometheus_text_survives_adversarial_names(
        names in proptest::collection::vec(arb_name(), 1..8),
        values in proptest::collection::vec(0u64..1_000_000, 1..32),
        window_samples in proptest::collection::vec(0u64..1_000_000, 0..16),
    ) {
        let registry = Registry::new();
        for (i, name) in names.iter().enumerate() {
            match i % 3 {
                0 => registry.counter(name).add(values[i % values.len()]),
                1 => registry.gauge(name).set(values[i % values.len()] as i64 - 500_000),
                _ => {
                    let h = registry.histogram(name);
                    for &v in &values {
                        h.record(v);
                    }
                }
            }
        }
        let mut windows = BTreeMap::new();
        if let Some(name) = names.last() {
            let mut snap = HistogramSnapshot::empty();
            for &v in &window_samples {
                snap.record(v);
            }
            windows.insert(format!("{name}_window"), snap);
        }
        let text = registry.snapshot().to_prometheus_text_with_windows(&windows);
        prop_assert!(!text.is_empty());
        if let Err(e) = validate_exposition(&text) {
            prop_assert!(false, "{}\n--- scrape ---\n{}", e, text);
        }
    }
}

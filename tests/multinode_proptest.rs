//! Property tests for the §V-B multi-node partition path: the scalable
//! (dominant-rank-sliced) strategy never moves more NoC traffic than the
//! naive (stage-split) one on CG shapes, and rank slicing makes per-node
//! DRAM traffic monotonically non-increasing in the node count.
//!
//! Both properties go through the *scheduled* path — `build_schedule_with`
//! with a `Partition` constraint, scored by `sim::evaluate` — so they pin
//! the engine's NoC/tiling model, not a standalone formula.

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule_with, ScheduleConstraints, ScheduleOptions};
use cello::core::score::multinode::{dominant_partition_rank, Partition};
use cello::graph::dag::TensorDag;
use cello::sim::evaluate::{evaluate_report, evaluate_schedule};
use cello::workloads::cg::{build_cg_dag, CgParams};
use proptest::prelude::*;

fn cg(m: u64, n: u64, iterations: u32) -> TensorDag {
    build_cg_dag(&CgParams {
        m,
        occupancy: 4.0,
        a_payload_words: 2 * 4 * m + m + 1,
        n,
        nprime: n,
        iterations,
        a_occupancy: None,
    })
}

fn partitioned(
    dag: &TensorDag,
    accel: &CelloConfig,
    partition: Partition,
) -> cello::sim::RunReport {
    let schedule = build_schedule_with(
        dag,
        ScheduleOptions::cello(),
        &ScheduleConstraints::partitioned(partition),
    );
    schedule.validate(dag).expect("partitioned schedule valid");
    evaluate_report(dag, &schedule, accel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scalable-strategy NoC traffic ≤ naive-strategy NoC traffic for all
    /// CG shapes (m ≫ n, the regime the paper's §V-B argument covers) and
    /// node counts: shipping the N×N' Greek tensors with mesh hops never
    /// costs more than shipping the M×N pipelined intermediates.
    #[test]
    fn scalable_noc_never_exceeds_naive(
        m in 20_000u64..200_000,
        n_exp in 2u32..6, // n ∈ {4, 8, 16, 32}
        nodes in 2u64..64,
    ) {
        let n = 1u64 << n_exp;
        let dag = cg(m, n, 2);
        let accel = CelloConfig::paper();
        let rank = dominant_partition_rank(&dag).expect("CG slices m");
        let scalable = partitioned(&dag, &accel, Partition::by_rank(nodes, rank));
        let naive = partitioned(&dag, &accel, Partition::by_stage(nodes));
        prop_assert!(naive.noc_hop_bytes > 0, "naive ships the intermediates");
        prop_assert!(
            scalable.noc_hop_bytes <= naive.noc_hop_bytes,
            "scalable {} > naive {} at m={m} n={n} nodes={nodes}",
            scalable.noc_hop_bytes,
            naive.noc_hop_bytes
        );
    }

    /// Rank slicing shrinks per-node tile footprints, so per-node DRAM
    /// traffic is monotonically non-increasing in the node count (capacity
    /// misses can only go down as the working set shrinks).
    #[test]
    fn per_node_dram_monotone_in_node_count(
        m in 20_000u64..120_000,
        n_exp in 3u32..5, // n ∈ {8, 16}
    ) {
        let n = 1u64 << n_exp;
        let dag = cg(m, n, 2);
        let accel = CelloConfig::paper();
        let rank = dominant_partition_rank(&dag).expect("CG slices m");
        let mut prev = u64::MAX;
        for nodes in [1u64, 2, 4, 8, 16] {
            let r = partitioned(&dag, &accel, Partition::by_rank(nodes, rank));
            let per_node = r.dram_bytes / r.nodes;
            prop_assert!(
                per_node <= prev,
                "per-node DRAM rose from {prev} to {per_node} at {nodes} nodes (m={m} n={n})"
            );
            prev = per_node;
        }
    }

    /// The Fig 8 orders-of-magnitude claim, through the scheduled path: at
    /// paper-scale CG shapes the naive strategy moves ≥100× the scalable
    /// strategy's NoC bytes.
    #[test]
    fn naive_pays_orders_of_magnitude_more(
        m in 80_000u64..200_000,
        nodes_exp in 1u32..4, // nodes ∈ {4, 16, 64}
    ) {
        let nodes = 4u64.pow(nodes_exp);
        let dag = cg(m, 16, 2);
        let accel = CelloConfig::paper();
        let rank = dominant_partition_rank(&dag).expect("CG slices m");
        let scalable = partitioned(&dag, &accel, Partition::by_rank(nodes, rank));
        let naive = partitioned(&dag, &accel, Partition::by_stage(nodes));
        prop_assert!(
            naive.noc_hop_bytes >= 100 * scalable.noc_hop_bytes.max(1),
            "naive {} vs scalable {}",
            naive.noc_hop_bytes,
            scalable.noc_hop_bytes
        );
    }
}

/// Deterministic end-to-end check of the §V-B acceptance shape: a 4-node
/// rank-sliced CELLO schedule on a capacity-bound CG moves strictly less
/// total (DRAM + NoC) traffic than the single-node CELLO schedule.
#[test]
fn four_node_slice_beats_single_node_total_traffic() {
    let dag = cg(81_920, 16, 3);
    let accel = CelloConfig::paper();
    let rank = dominant_partition_rank(&dag).expect("CG slices m");
    let single = {
        let s = build_schedule_with(&dag, ScheduleOptions::cello(), &ScheduleConstraints::none());
        evaluate_schedule(&dag, &s, &accel)
    };
    let four = {
        let s = build_schedule_with(
            &dag,
            ScheduleOptions::cello(),
            &ScheduleConstraints::partitioned(Partition::by_rank(4, rank)),
        );
        evaluate_schedule(&dag, &s, &accel)
    };
    assert!(
        four.total_traffic_bytes() < single.total_traffic_bytes(),
        "4-node {} !< 1-node {}",
        four.total_traffic_bytes(),
        single.total_traffic_bytes()
    );
}

//! Property tests for `cello_bench::explain`'s cost decomposition.
//!
//! The explain module's claim is exactness: per phase, `total = compute +
//! exposed-transfer excess + NoC/serialization excess` is an identity over
//! the overlap ledger's charges (not a model), and per-(phase, axis)
//! *deltas* between any two reports telescope to the total cycle delta —
//! even when the two schedules phase differently and the shorter side is
//! zero-padded. These tests drive real simulator reports (random CG
//! shapes × schedule family × transfer tuning) through the decomposition
//! and assert the identities hold to the cycle and to the byte.

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule_with, ScheduleConstraints, ScheduleOptions};
use cello::core::TransferTuning;
use cello::graph::dag::TensorDag;
use cello::sim::evaluate::evaluate_report;
use cello::sim::report::RunReport;
use cello::workloads::cg::{build_cg_dag, CgParams};
use cello_bench::explain::{self, AxisDelta};
use proptest::prelude::*;

fn cg(m: u64, iterations: u32) -> TensorDag {
    build_cg_dag(&CgParams {
        m,
        occupancy: 4.0,
        a_payload_words: 2 * 4 * m + m + 1,
        n: 16,
        nprime: 16,
        iterations,
        a_occupancy: None,
    })
}

/// One point in the (schedule family × transfer tuning) menu — enough
/// variety that the two diffed reports disagree on phase count, CHORD
/// usage, and overlap behavior.
fn build_report(dag: &TensorDag, accel: &CelloConfig, family: u8, depth: u8) -> RunReport {
    let opts = match family % 3 {
        0 => ScheduleOptions::cello(),
        1 => ScheduleOptions::best_intra(),
        _ => ScheduleOptions::flat(),
    };
    let mut constraints = ScheduleConstraints::none();
    constraints.transfer = match depth {
        0 => None,
        d if d % 2 == 0 => Some(TransferTuning::single_buffered(d)),
        d => Some(TransferTuning::double_buffered(d)),
    };
    evaluate_report(dag, &build_schedule_with(dag, opts, &constraints), accel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Within one report the cycle axes are an exact decomposition: every
    /// axis is non-negative (the ledger never charges a phase less than
    /// `max(compute, exposed_mem)`), and the rows sum to `report.cycles`
    /// exactly. Likewise the DRAM axes sum to each phase's ledgered bytes.
    #[test]
    fn axes_decompose_each_report_exactly(
        m in 20_000u64..80_000,
        iterations in 1u32..4,
        family in 0u8..3,
        depth in 0u8..5,
    ) {
        let dag = cg(m, iterations);
        let r = build_report(&dag, &CelloConfig::paper(), family, depth);

        let cycle_rows = explain::cycle_axes(&r);
        prop_assert_eq!(cycle_rows.len(), r.phase_cycles.len());
        for (p, row) in cycle_rows.iter().enumerate() {
            for (a, &v) in row.iter().enumerate() {
                prop_assert!(v >= 0, "phase {p} axis {a} went negative: {v}");
            }
        }
        let total: i64 = cycle_rows.iter().flatten().sum();
        prop_assert_eq!(total, r.cycles as i64, "cycle axes must sum to the total");

        let dram_rows = explain::dram_axes(&r);
        prop_assert_eq!(dram_rows.len(), r.phase_dram_bytes.len());
        for (p, row) in dram_rows.iter().enumerate() {
            let sum: i64 = row.iter().sum();
            prop_assert_eq!(
                sum, r.phase_dram_bytes[p] as i64,
                "phase {} DRAM axes must sum to the ledgered bytes", p
            );
        }
    }

    /// Between any two reports — different schedule families, phase
    /// counts, and tunings — the per-(phase, axis) deltas telescope to the
    /// total cycle delta exactly, in both diff directions, with the
    /// shorter phase list zero-padded rather than truncated.
    #[test]
    fn axis_deltas_telescope_to_the_total_delta(
        m in 20_000u64..80_000,
        iterations in 1u32..4,
        family_a in 0u8..3,
        family_b in 0u8..3,
        depth_a in 0u8..5,
        depth_b in 0u8..5,
    ) {
        let dag = cg(m, iterations);
        let accel = CelloConfig::paper();
        let a = build_report(&dag, &accel, family_a, depth_a);
        let b = build_report(&dag, &accel, family_b, depth_b);

        let e = explain::diff_reports(&a, &b);
        prop_assert_eq!(e.cycle_delta(), b.cycles as i64 - a.cycles as i64);
        let row_sum: i64 = e.cycle_rows.iter().map(AxisDelta::delta).sum();
        prop_assert_eq!(
            row_sum, e.cycle_delta(),
            "cycle rows must telescope ({} phases vs {})",
            a.phase_cycles.len(), b.phase_cycles.len()
        );
        let axis_sum: i64 = e.cycle_axis_totals().iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(axis_sum, e.cycle_delta(), "axis totals must telescope too");

        let dram_sum: i64 = e.dram_rows.iter().map(AxisDelta::delta).sum();
        prop_assert_eq!(
            dram_sum,
            b.phase_dram_bytes.iter().sum::<u64>() as i64
                - a.phase_dram_bytes.iter().sum::<u64>() as i64,
            "DRAM rows must telescope"
        );

        // The reverse diff is the exact negation, row by row.
        let rev = explain::diff_reports(&b, &a);
        prop_assert_eq!(rev.cycle_delta(), -e.cycle_delta());
        for (fwd, bwd) in e.cycle_rows.iter().zip(&rev.cycle_rows) {
            prop_assert_eq!(fwd.delta(), -bwd.delta(), "phase {} {}", fwd.phase, fwd.axis);
        }
    }
}

//! Property tests for the two-tier evaluation pipeline: the analytic
//! surrogate must *rank* like the exact simulator across random CG/HPCG
//! co-design spaces (that is the entire contract `Strategy::Prefiltered`
//! rests on), and the prefilter with `keep_frac = 1.0` must degenerate to
//! its inner strategy exactly.

use cello::core::accel::CelloConfig;
use cello::graph::dag::TensorDag;
use cello::search::{spearman, surrogate_cost, SearchSpace, SpaceConfig, Strategy, Tuner};
use cello::sim::evaluate::evaluate_schedule;
use cello::workloads::cg::{build_cg_dag, CgParams};
use cello::workloads::hpcg::{build_hpcg_dag, HpcgParams};
use proptest::prelude::*;

/// Seeded-random assignments from `space` (the `Strategy::Random` stream
/// via `SearchSpace::sample_assignments`), deduplicated by canonical
/// schedule key so ties from colliding assignments don't inflate the
/// correlation.
fn sample_pairs(
    dag: &TensorDag,
    accel: &CelloConfig,
    cfg: &SpaceConfig,
    samples: usize,
    seed: u64,
) -> (Vec<u64>, Vec<u64>) {
    let space = SearchSpace::from_dag(dag, cfg);
    let mut est = Vec::new();
    let mut sim = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for picks in space.sample_assignments(samples, seed) {
        let schedule = space.assemble(&picks).build(dag);
        if !seen.insert(cello::search::Candidate::schedule_key(&schedule)) {
            continue;
        }
        est.push(surrogate_cost(dag, &schedule, accel).total_traffic_bytes());
        sim.push(evaluate_schedule(dag, &schedule, accel).total_traffic_bytes());
    }
    (est, sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Across random widened CG spaces (problem size, iteration count, mesh
    /// size, sample seed all drawn), the surrogate's total-traffic ranking
    /// agrees with `sim::evaluate` at Spearman >= 0.8.
    #[test]
    fn surrogate_ranks_random_cg_spaces(
        m in 20_000u64..120_000,
        iterations in 2u32..6,
        mesh in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let dag = build_cg_dag(&CgParams {
            m,
            occupancy: 4.0,
            a_payload_words: 2 * 4 * m + m + 1,
            n: 16,
            nprime: 16,
            iterations,
            a_occupancy: None,
        });
        let accel = CelloConfig::paper();
        let nodes: &[u64] = [&[1u64][..], &[1, 4][..], &[1, 4, 16][..]][mesh];
        let cfg = SpaceConfig::widened_with_nodes(nodes);
        let (est, sim) = sample_pairs(&dag, &accel, &cfg, 32, seed);
        prop_assert!(est.len() >= 8, "degenerate sample: {} distinct", est.len());
        let rho = spearman(&est, &sim);
        prop_assert!(
            rho >= 0.8,
            "CG m={m} iters={iterations} mesh={nodes:?} seed={seed}: rho {rho:.3}"
        );
    }

    /// The per-phase dimension keeps the contract: widened spaces with the
    /// SRAM-repartition profile menu (per-phase CHORD capacities, resize
    /// traffic and all) still rank at Spearman >= 0.8 on random CG/HPCG
    /// problems.
    #[test]
    fn surrogate_ranks_repartitioned_spaces(
        m in 20_000u64..120_000,
        iterations in 2u32..5,
        hpcg in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let accel = CelloConfig::paper();
        let dag = if hpcg {
            build_hpcg_dag(&HpcgParams { nx: 24 + (m % 24), n: 16, iterations })
        } else {
            build_cg_dag(&CgParams {
                m,
                occupancy: 4.0,
                a_payload_words: 2 * 4 * m + m + 1,
                n: 16,
                nprime: 16,
                iterations,
                a_occupancy: None,
            })
        };
        let cfg = SpaceConfig::widened().with_repartition(accel.sram_words());
        let (est, sim) = sample_pairs(&dag, &accel, &cfg, 32, seed);
        prop_assert!(est.len() >= 8, "degenerate sample: {} distinct", est.len());
        let rho = spearman(&est, &sim);
        prop_assert!(
            rho >= 0.8,
            "repartitioned space m={m} hpcg={hpcg} seed={seed}: rho {rho:.3}"
        );
    }

    /// Same contract on random HPCG spaces.
    #[test]
    fn surrogate_ranks_random_hpcg_spaces(
        nx in 24u64..56,
        iterations in 2u32..5,
        multi in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let dag = build_hpcg_dag(&HpcgParams { nx, n: 16, iterations });
        let accel = CelloConfig::paper();
        let nodes: &[u64] = if multi { &[1, 4] } else { &[1] };
        let cfg = SpaceConfig::widened_with_nodes(nodes);
        let (est, sim) = sample_pairs(&dag, &accel, &cfg, 32, seed);
        prop_assert!(est.len() >= 8, "degenerate sample: {} distinct", est.len());
        let rho = spearman(&est, &sim);
        prop_assert!(
            rho >= 0.8,
            "HPCG nx={nx} iters={iterations} nodes={nodes:?} seed={seed}: rho {rho:.3}"
        );
    }

    /// `Prefiltered(keep_frac = 1.0, inner)` keeps the whole visited set —
    /// it must return the identical best candidate (and Pareto front) as
    /// running the inner strategy directly.
    #[test]
    fn prefilter_keep_all_matches_inner(
        m in 20_000u64..120_000,
        width in 2usize..5,
    ) {
        let dag = build_cg_dag(&CgParams {
            m,
            occupancy: 4.0,
            a_payload_words: 2 * 4 * m + m + 1,
            n: 16,
            nprime: 16,
            iterations: 2,
            a_occupancy: None,
        });
        let accel = CelloConfig::paper();
        let cfg = SpaceConfig::widened();
        let inner = Strategy::Beam { width };
        let direct = Tuner::new(&dag, &accel, cfg.clone()).tune(&inner);
        let pre = Tuner::new(&dag, &accel, cfg)
            .tune(&Strategy::prefiltered(1.0, inner));
        prop_assert_eq!(&pre.best_cycles.key, &direct.best_cycles.key);
        prop_assert_eq!(&pre.best_cycles.candidate, &direct.best_cycles.candidate);
        prop_assert_eq!(&pre.best_traffic.key, &direct.best_traffic.key);
        prop_assert_eq!(
            pre.pareto.iter().map(|e| e.key).collect::<Vec<_>>(),
            direct.pareto.iter().map(|e| e.key).collect::<Vec<_>>()
        );
    }

    /// The prefilter honors its budget on every space it meets: sim
    /// evaluations never exceed the surrogate-ranked keep fraction (plus
    /// the always-evaluated baseline), and the tuned result still never
    /// loses to the paper heuristic.
    #[test]
    fn prefilter_budget_and_soundness(
        m in 20_000u64..120_000,
        keep in 0.05f64..0.5,
        seed in 0u64..100,
    ) {
        let dag = build_cg_dag(&CgParams {
            m,
            occupancy: 4.0,
            a_payload_words: 2 * 4 * m + m + 1,
            n: 16,
            nprime: 16,
            iterations: 2,
            a_occupancy: None,
        });
        let accel = CelloConfig::paper();
        let tuner = Tuner::new(&dag, &accel, SpaceConfig::widened());
        let out = tuner.tune(&Strategy::prefiltered(
            keep,
            Strategy::Random { samples: 40, seed },
        ));
        prop_assert!(out.best_cycles.cost.cycles <= out.baseline.cost.cycles);
        // Budget: survivors = ceil(keep * distinct surrogate-scored) + the
        // baseline evaluation.
        let cap = (keep * out.surrogate_scored as f64).ceil() as u64 + 1;
        prop_assert!(
            out.evaluations <= cap,
            "evals {} > cap {cap} (surrogate_scored {})",
            out.evaluations, out.surrogate_scored
        );
    }
}

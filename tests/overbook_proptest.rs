//! Property tests for occupancy-derived footprints and Tailors-style
//! CHORD overbooking.
//!
//! Four contracts from the sparsity-aware design:
//!
//! 1. **Grant sandwich** — an overbooked grant never exceeds the
//!    worst-case-dense footprint and the modeled spill never exceeds the
//!    tensor itself, for every occupancy distribution and every level;
//!    level 0 is the identity.
//! 2. **Dense identity** — a workload whose measured occupancy is fully
//!    dense replays the pre-occupancy worst-case model bit-identically at
//!    every overbooking level, in the exact engine AND the analytic
//!    surrogate; likewise overbooking-off replays it for any occupancy.
//! 3. **Spill monotonicity** — with the mean fixed, raising the
//!    occupancy variance can only raise the modeled DRAM traffic of an
//!    overbooked schedule (the refetch tail grows with the skew).
//! 4. **Surrogate ranking** — on widened spaces that include the
//!    overbook menu, the surrogate's estimates rank like the exact
//!    simulator's (Spearman >= 0.9), so the funnel can triage overbooked
//!    candidates.

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule_with, ScheduleConstraints, ScheduleOptions};
use cello::core::{ChordOverbook, MAX_OVERBOOK_LEVEL};
use cello::graph::dag::TensorDag;
use cello::search::{spearman, surrogate_cost, SearchSpace, SpaceConfig};
use cello::sim::evaluate::evaluate_schedule;
use cello::tensor::sparse::OccupancyStats;
use cello::workloads::cg::{build_cg_dag, CgParams};
use proptest::prelude::*;

/// An occupancy distribution with the given relative mean and relative
/// standard deviation (`max` stays 1, so the fractions coincide).
fn occ(rel_mean: f64, rel_std: f64) -> OccupancyStats {
    OccupancyStats {
        mean: rel_mean,
        variance: rel_std * rel_std,
        ..OccupancyStats::dense()
    }
}

fn cg(m: u64, iterations: u32, a_occupancy: Option<OccupancyStats>) -> TensorDag {
    build_cg_dag(&CgParams {
        m,
        occupancy: 4.0,
        a_payload_words: 2 * 4 * m + m + 1,
        n: 16,
        nprime: 16,
        iterations,
        a_occupancy,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any occupancy distribution, level and tensor size: the granted
    /// footprint never exceeds worst-case dense, the spill never exceeds
    /// the tensor, and level 0 grants everything and spills nothing.
    #[test]
    fn grants_never_exceed_the_dense_footprint(
        words in 1u64..10_000_000,
        rel_mean in 0.0f64..1.0,
        rel_std in 0.0f64..1.0,
        level in 0u8..=MAX_OVERBOOK_LEVEL,
    ) {
        let stats = occ(rel_mean, rel_std);
        let ob = ChordOverbook::at(level);
        let granted = ob.granted_words(words, &stats);
        let spill = ob.spill_words(words, &stats);
        prop_assert!(granted <= words, "granted {granted} > dense {words}");
        prop_assert!(spill <= words, "spill {spill} > tensor {words}");
        if level == 0 {
            prop_assert_eq!(granted, words, "off must grant the dense footprint");
            prop_assert_eq!(spill, 0u64, "off must never spill");
        }
        // Dense stats are the identity at every level.
        let dense = OccupancyStats::dense();
        prop_assert_eq!(ob.granted_words(words, &dense), words);
        prop_assert_eq!(ob.spill_words(words, &dense), 0u64);
    }

    /// Dense measured occupancy replays the worst-case model bit-for-bit
    /// at every overbooking level — in the exact engine and the
    /// surrogate — and any occupancy replays it with overbooking off.
    /// This is the "no silent drift" guarantee: carrying stats on a
    /// matrix that turns out dense, or declining the overbook knob,
    /// costs nothing.
    #[test]
    fn dense_occupancy_replays_the_worst_case_model(
        m in 20_000u64..120_000,
        iterations in 1u32..4,
        level in 1u8..=MAX_OVERBOOK_LEVEL,
        rel_mean in 0.1f64..0.9,
        rel_std in 0.0f64..0.5,
    ) {
        let accel = CelloConfig::paper();
        let opts = ScheduleOptions::cello();
        let baseline_dag = cg(m, iterations, None);
        let plain = ScheduleConstraints::none();
        let baseline = build_schedule_with(&baseline_dag, opts, &plain);
        let base_sim = evaluate_schedule(&baseline_dag, &baseline, &accel);
        let base_est = surrogate_cost(&baseline_dag, &baseline, &accel);

        // Dense stats + any level: identical in both tiers.
        let dense_dag = cg(m, iterations, Some(OccupancyStats::dense()));
        let mut overbooked = ScheduleConstraints::none();
        overbooked.chord_overbook = Some(ChordOverbook::at(level));
        let s = build_schedule_with(&dense_dag, opts, &overbooked);
        prop_assert_eq!(
            evaluate_schedule(&dense_dag, &s, &accel), base_sim,
            "dense occupancy diverged in the engine at level {}", level
        );
        prop_assert_eq!(
            surrogate_cost(&dense_dag, &s, &accel), base_est,
            "dense occupancy diverged in the surrogate at level {}", level
        );

        // Skewed stats + overbooking off: identical in both tiers.
        let skewed_dag = cg(m, iterations, Some(occ(rel_mean, rel_std)));
        for off in [None, Some(ChordOverbook::off())] {
            let mut c = ScheduleConstraints::none();
            c.chord_overbook = off;
            let s = build_schedule_with(&skewed_dag, opts, &c);
            prop_assert_eq!(
                evaluate_schedule(&skewed_dag, &s, &accel), base_sim,
                "overbook-off spelling {:?} diverged in the engine", off
            );
            prop_assert_eq!(
                surrogate_cost(&skewed_dag, &s, &accel), base_est,
                "overbook-off spelling {:?} diverged in the surrogate", off
            );
        }
    }

    /// With the mean fixed, more occupancy variance can only mean more
    /// modeled DRAM traffic under an overbooked schedule: the grant is a
    /// function of the mean alone, while the refetch tail grows with the
    /// standard deviation.
    #[test]
    fn spill_grows_with_occupancy_variance(
        m in 20_000u64..120_000,
        iterations in 1u32..4,
        level in 1u8..=MAX_OVERBOOK_LEVEL,
        rel_mean in 0.1f64..0.9,
        std_lo in 0.0f64..0.5,
        std_delta in 0.0f64..0.5,
    ) {
        let accel = CelloConfig::paper();
        let opts = ScheduleOptions::cello();
        let mut constraints = ScheduleConstraints::none();
        constraints.chord_overbook = Some(ChordOverbook::at(level));
        let run = |rel_std: f64| {
            let dag = cg(m, iterations, Some(occ(rel_mean, rel_std)));
            evaluate_schedule(&dag, &build_schedule_with(&dag, opts, &constraints), &accel)
        };
        let lo = run(std_lo);
        let hi = run(std_lo + std_delta);
        prop_assert!(
            hi.dram_bytes >= lo.dram_bytes,
            "variance raised but traffic fell: {} < {} (mean {rel_mean}, \
             std {std_lo} -> {}, level {level})",
            hi.dram_bytes, lo.dram_bytes, std_lo + std_delta
        );
    }

    /// The surrogate ranks overbook-enabled widened spaces like the exact
    /// sim (Spearman >= 0.9 on cycles) — the contract the funnel needs
    /// before it may triage overbooked candidates.
    #[test]
    fn surrogate_ranks_overbooked_spaces(
        m in 20_000u64..120_000,
        iterations in 2u32..5,
        rel_mean in 0.1f64..0.9,
        rel_std in 0.1f64..0.5,
        seed in 0u64..1_000,
    ) {
        let dag = cg(m, iterations, Some(occ(rel_mean, rel_std)));
        let accel = CelloConfig::paper();
        let cfg = SpaceConfig::widened();
        prop_assert!(
            !cfg.overbook_menu.is_empty(),
            "widened spaces must include the overbook dimension"
        );
        let space = SearchSpace::from_dag(&dag, &cfg);
        prop_assert!(
            space.decisions.iter().any(|d| d.name == "overbook"),
            "occupancy-carrying DAG must gate the overbook dimension on"
        );
        let mut est = Vec::new();
        let mut sim = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for picks in space.sample_assignments(32, seed) {
            let schedule = space.assemble(&picks).build(&dag);
            if !seen.insert(cello::search::Candidate::schedule_key(&schedule)) {
                continue;
            }
            est.push(surrogate_cost(&dag, &schedule, &accel).cycles);
            sim.push(evaluate_schedule(&dag, &schedule, &accel).cycles);
        }
        prop_assert!(est.len() >= 8, "degenerate sample: {} distinct", est.len());
        let rho = spearman(&est, &sim);
        prop_assert!(
            rho >= 0.9,
            "m={m} iters={iterations} seed={seed}: cycle rho {rho:.3}"
        );
    }
}

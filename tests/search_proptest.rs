//! Property tests for the DSE engine (`cello-search`): determinism of the
//! Pareto front under a fixed seed, the guarantee that tuning never loses
//! to the `ScheduleOptions::cello()` paper heuristic on the toy
//! chain/diamond DAGs, and soundness of the tier-0 symbolic prune (it
//! never discards the sim-optimal candidate on exhaustively-coverable
//! spaces).

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule, ScheduleOptions};
use cello::graph::dag::TensorDag;
use cello::graph::edge::TensorMeta;
use cello::graph::node::OpKind;
use cello::search::{SpaceConfig, Strategy, Tuner};
use cello::sim::evaluate::evaluate_schedule;
use cello::tensor::einsum::EinsumSpec;
use cello::tensor::shape::RankExtent;
use proptest::prelude::*;

fn spec(m: u64) -> EinsumSpec {
    EinsumSpec::parse(
        "mk,kn->mn",
        &[
            RankExtent::dense("m", m),
            RankExtent::dense("k", 16),
            RankExtent::dense("n", 16),
        ],
    )
}

/// Linear producer→consumer chain of `n_ops` big tensors.
fn chain(n_ops: usize, m: u64) -> TensorDag {
    let mut dag = TensorDag::new();
    let mut prev = None;
    for i in 0..n_ops {
        let id = dag.add_op(
            format!("op{i}"),
            spec(m),
            OpKind::TensorMac,
            TensorMeta::dense(format!("T{i}"), &["m", "n"], m * 16),
        );
        if let Some(p) = prev {
            dag.add_edge(p, id, &["m", "k"]);
        } else {
            dag.add_external(
                TensorMeta::dense("In", &["m", "k"], m * 16),
                &[(id, &["m", "k"])],
            );
        }
        prev = Some(id);
    }
    dag
}

/// Diamond: one producer multicasting to `fanout` consumers, all joined.
fn diamond(fanout: usize, m: u64) -> TensorDag {
    let mut dag = TensorDag::new();
    let p = dag.add_op(
        "p",
        spec(m),
        OpKind::TensorMac,
        TensorMeta::dense("T0", &["m", "n"], m * 16),
    );
    let mut mids = Vec::new();
    for i in 0..fanout {
        let c = dag.add_op(
            format!("c{i}"),
            spec(m),
            OpKind::TensorMac,
            TensorMeta::dense(format!("M{i}"), &["m", "n"], m * 16),
        );
        dag.add_edge(p, c, &["m", "k"]);
        mids.push(c);
    }
    let join = dag.add_op(
        "join",
        spec(m),
        OpKind::TensorMac,
        TensorMeta::dense("Out", &["m", "n"], m * 16),
    );
    for c in mids {
        dag.add_edge(c, join, &["m", "k"]);
    }
    dag.add_external(
        TensorMeta::dense("In", &["m", "k"], m * 16),
        &[(p, &["m", "k"])],
    );
    dag
}

fn small_cfg() -> SpaceConfig {
    SpaceConfig {
        max_cut_points: 2,
        max_steer_tensors: 2,
        max_loop_order_nodes: 1,
        pipeline_words_choices: vec![65_536, 16_384],
        rf_words_choices: vec![16_384],
        node_choices: vec![1],
        max_chord_bias_tensors: 0,
        chord_bias_magnitudes: vec![1],
        repartition_profiles: Vec::new(),
        transfer_menu: Vec::new(),
        overbook_menu: Vec::new(),
    }
}

/// Heuristic cycles through the same evaluator the search uses.
fn heuristic_cycles(dag: &TensorDag, accel: &CelloConfig) -> u64 {
    let schedule = build_schedule(dag, ScheduleOptions::cello());
    evaluate_schedule(dag, &schedule, accel).cycles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + same DAG ⇒ bit-identical Pareto front (keys and costs),
    /// across two completely fresh tuners.
    #[test]
    fn random_search_is_deterministic(
        n_ops in 2usize..6,
        m in 10_000u64..200_000,
        seed in 0u64..1_000,
    ) {
        let dag = chain(n_ops, m);
        let accel = CelloConfig::paper();
        let run = || {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let out = tuner.tune(&Strategy::Random { samples: 24, seed });
            out.pareto
                .iter()
                .map(|e| (e.key, e.cost.cycles, e.cost.dram_bytes))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Beam search is deterministic too (no seed at all — ties break on the
    /// canonical schedule key).
    #[test]
    fn beam_search_is_deterministic(
        fanout in 2usize..5,
        m in 10_000u64..200_000,
    ) {
        let dag = diamond(fanout, m);
        let accel = CelloConfig::paper();
        let run = || {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let out = tuner.tune(&Strategy::Beam { width: 3 });
            (
                out.best_cycles.key,
                out.pareto.iter().map(|e| e.key).collect::<Vec<_>>(),
                out.evaluations,
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// On chain DAGs the tuned schedule is never worse than the paper
    /// heuristic on cycles, under every strategy.
    #[test]
    fn tuned_never_worse_than_cello_on_chains(
        n_ops in 2usize..7,
        m in 10_000u64..500_000,
        seed in 0u64..100,
    ) {
        let dag = chain(n_ops, m);
        let accel = CelloConfig::paper();
        let base = heuristic_cycles(&dag, &accel);
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        for strategy in [
            Strategy::Beam { width: 3 },
            Strategy::Random { samples: 16, seed },
            Strategy::Exhaustive,
        ] {
            let out = tuner.tune(&strategy);
            prop_assert_eq!(out.baseline.cost.cycles, base, "baseline == heuristic");
            prop_assert!(
                out.best_cycles.cost.cycles <= base,
                "{:?}: tuned {} vs heuristic {}",
                strategy, out.best_cycles.cost.cycles, base
            );
        }
    }

    /// Tier-0's symbolic dominance prune is *sound* when its budget and
    /// keep cap cover the whole space: everything it discards is
    /// sketch-dominated by a survivor, and on these spaces that never
    /// loses the sim-optimal schedule — the funnel's rank-best cost equals
    /// exhaustive enumeration's on every objective, for both DAG shapes.
    #[test]
    fn tier0_never_discards_the_sim_optimum(
        n_ops in 2usize..5,
        fanout in 2usize..4,
        m in 10_000u64..300_000,
    ) {
        for dag in [chain(n_ops, m), diamond(fanout, m)] {
            let accel = CelloConfig::paper();
            let ex = Tuner::new(&dag, &accel, small_cfg()).tune(&Strategy::Exhaustive);
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let budget = tuner.space().exhaustive_size();
            let t0 = tuner.tune(&Strategy::Tier0 {
                budget,
                keep: usize::MAX >> 1,
            });
            prop_assert!(
                t0.candidates_seen >= ex.candidates_seen,
                "tier-0 swept the whole space ({} vs {})",
                t0.candidates_seen, ex.candidates_seen
            );
            prop_assert!(
                t0.evaluations <= ex.evaluations,
                "the prune must not add evaluations"
            );
            prop_assert_eq!(
                t0.best_cycles.cost, ex.best_cycles.cost,
                "rank-best must survive the symbolic prune"
            );
            prop_assert_eq!(
                t0.best_traffic.cost.total_traffic_bytes(),
                ex.best_traffic.cost.total_traffic_bytes(),
                "traffic-best must survive the symbolic prune"
            );
        }
    }

    /// Same guarantee on diamond DAGs.
    #[test]
    fn tuned_never_worse_than_cello_on_diamonds(
        fanout in 2usize..5,
        m in 10_000u64..500_000,
        seed in 0u64..100,
    ) {
        let dag = diamond(fanout, m);
        let accel = CelloConfig::paper();
        let base = heuristic_cycles(&dag, &accel);
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        for strategy in [
            Strategy::Beam { width: 3 },
            Strategy::Random { samples: 16, seed },
        ] {
            let out = tuner.tune(&strategy);
            prop_assert!(
                out.best_cycles.cost.cycles <= base,
                "{:?}: tuned {} vs heuristic {}",
                strategy, out.best_cycles.cost.cycles, base
            );
            // And the Pareto front never contains a point dominated by the
            // baseline (the baseline is in the comparison set).
            for e in &out.pareto {
                prop_assert!(!out.baseline.cost.dominates(&e.cost), "{}", e.key.hex());
            }
        }
    }
}

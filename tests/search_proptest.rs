//! Property tests for the DSE engine (`cello-search`): determinism of the
//! Pareto front under a fixed seed, and the guarantee that tuning never
//! loses to the `ScheduleOptions::cello()` paper heuristic on the toy
//! chain/diamond DAGs.

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule, ScheduleOptions};
use cello::graph::dag::TensorDag;
use cello::graph::edge::TensorMeta;
use cello::graph::node::OpKind;
use cello::search::{SpaceConfig, Strategy, Tuner};
use cello::sim::evaluate::evaluate_schedule;
use cello::tensor::einsum::EinsumSpec;
use cello::tensor::shape::RankExtent;
use proptest::prelude::*;

fn spec(m: u64) -> EinsumSpec {
    EinsumSpec::parse(
        "mk,kn->mn",
        &[
            RankExtent::dense("m", m),
            RankExtent::dense("k", 16),
            RankExtent::dense("n", 16),
        ],
    )
}

/// Linear producer→consumer chain of `n_ops` big tensors.
fn chain(n_ops: usize, m: u64) -> TensorDag {
    let mut dag = TensorDag::new();
    let mut prev = None;
    for i in 0..n_ops {
        let id = dag.add_op(
            format!("op{i}"),
            spec(m),
            OpKind::TensorMac,
            TensorMeta::dense(format!("T{i}"), &["m", "n"], m * 16),
        );
        if let Some(p) = prev {
            dag.add_edge(p, id, &["m", "k"]);
        } else {
            dag.add_external(
                TensorMeta::dense("In", &["m", "k"], m * 16),
                &[(id, &["m", "k"])],
            );
        }
        prev = Some(id);
    }
    dag
}

/// Diamond: one producer multicasting to `fanout` consumers, all joined.
fn diamond(fanout: usize, m: u64) -> TensorDag {
    let mut dag = TensorDag::new();
    let p = dag.add_op(
        "p",
        spec(m),
        OpKind::TensorMac,
        TensorMeta::dense("T0", &["m", "n"], m * 16),
    );
    let mut mids = Vec::new();
    for i in 0..fanout {
        let c = dag.add_op(
            format!("c{i}"),
            spec(m),
            OpKind::TensorMac,
            TensorMeta::dense(format!("M{i}"), &["m", "n"], m * 16),
        );
        dag.add_edge(p, c, &["m", "k"]);
        mids.push(c);
    }
    let join = dag.add_op(
        "join",
        spec(m),
        OpKind::TensorMac,
        TensorMeta::dense("Out", &["m", "n"], m * 16),
    );
    for c in mids {
        dag.add_edge(c, join, &["m", "k"]);
    }
    dag.add_external(
        TensorMeta::dense("In", &["m", "k"], m * 16),
        &[(p, &["m", "k"])],
    );
    dag
}

fn small_cfg() -> SpaceConfig {
    SpaceConfig {
        max_cut_points: 2,
        max_steer_tensors: 2,
        max_loop_order_nodes: 1,
        pipeline_words_choices: vec![65_536, 16_384],
        rf_words_choices: vec![16_384],
        node_choices: vec![1],
        max_chord_bias_tensors: 0,
        repartition_profiles: Vec::new(),
    }
}

/// Heuristic cycles through the same evaluator the search uses.
fn heuristic_cycles(dag: &TensorDag, accel: &CelloConfig) -> u64 {
    let schedule = build_schedule(dag, ScheduleOptions::cello());
    evaluate_schedule(dag, &schedule, accel).cycles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + same DAG ⇒ bit-identical Pareto front (keys and costs),
    /// across two completely fresh tuners.
    #[test]
    fn random_search_is_deterministic(
        n_ops in 2usize..6,
        m in 10_000u64..200_000,
        seed in 0u64..1_000,
    ) {
        let dag = chain(n_ops, m);
        let accel = CelloConfig::paper();
        let run = || {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let out = tuner.tune(&Strategy::Random { samples: 24, seed });
            out.pareto
                .iter()
                .map(|e| (e.key.clone(), e.cost.cycles, e.cost.dram_bytes))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Beam search is deterministic too (no seed at all — ties break on the
    /// canonical schedule key).
    #[test]
    fn beam_search_is_deterministic(
        fanout in 2usize..5,
        m in 10_000u64..200_000,
    ) {
        let dag = diamond(fanout, m);
        let accel = CelloConfig::paper();
        let run = || {
            let tuner = Tuner::new(&dag, &accel, small_cfg());
            let out = tuner.tune(&Strategy::Beam { width: 3 });
            (
                out.best_cycles.key.clone(),
                out.pareto.iter().map(|e| e.key.clone()).collect::<Vec<_>>(),
                out.evaluations,
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// On chain DAGs the tuned schedule is never worse than the paper
    /// heuristic on cycles, under every strategy.
    #[test]
    fn tuned_never_worse_than_cello_on_chains(
        n_ops in 2usize..7,
        m in 10_000u64..500_000,
        seed in 0u64..100,
    ) {
        let dag = chain(n_ops, m);
        let accel = CelloConfig::paper();
        let base = heuristic_cycles(&dag, &accel);
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        for strategy in [
            Strategy::Beam { width: 3 },
            Strategy::Random { samples: 16, seed },
            Strategy::Exhaustive,
        ] {
            let out = tuner.tune(&strategy);
            prop_assert_eq!(out.baseline.cost.cycles, base, "baseline == heuristic");
            prop_assert!(
                out.best_cycles.cost.cycles <= base,
                "{:?}: tuned {} vs heuristic {}",
                strategy, out.best_cycles.cost.cycles, base
            );
        }
    }

    /// Same guarantee on diamond DAGs.
    #[test]
    fn tuned_never_worse_than_cello_on_diamonds(
        fanout in 2usize..5,
        m in 10_000u64..500_000,
        seed in 0u64..100,
    ) {
        let dag = diamond(fanout, m);
        let accel = CelloConfig::paper();
        let base = heuristic_cycles(&dag, &accel);
        let tuner = Tuner::new(&dag, &accel, small_cfg());
        for strategy in [
            Strategy::Beam { width: 3 },
            Strategy::Random { samples: 16, seed },
        ] {
            let out = tuner.tune(&strategy);
            prop_assert!(
                out.best_cycles.cost.cycles <= base,
                "{:?}: tuned {} vs heuristic {}",
                strategy, out.best_cycles.cost.cycles, base
            );
            // And the Pareto front never contains a point dominated by the
            // baseline (the baseline is in the comparison set).
            for e in &out.pareto {
                prop_assert!(!out.baseline.cost.dominates(&e.cost), "{}", e.key);
            }
        }
    }
}

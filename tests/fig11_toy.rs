//! The paper's Fig 11 toy program: why operand-level replacement (CHORD)
//! beats line-level LRU and BRRIP on tensor programs.
//!
//! Scenario (three steps over a buffer that holds half a tensor):
//!
//! 1. **Write T1** (larger than the buffer). CHORD/PRELUDE keeps T1's *head*
//!    (it will be re-referenced first); LRU keeps the most-recent *tail* —
//!    exactly the wrong half.
//! 2. **T3 = T1·T2, write T3** (T3 is "frequent ahead"). CHORD hits on T1's
//!    head, then RIFF replaces T1 with T3. LRU must stream T1's head back
//!    from DRAM (it kept the tail), and ends with a stale mixture.
//! 3. **Read T3.** CHORD already holds T3's head; LRU/BRRIP hold leftovers
//!    and pay again.
//!
//! We assert the *traffic consequences* of the figure: CHORD's DRAM bytes are
//! strictly lower at every step boundary than both cache policies'.

use cello::core::chord::{Chord, ChordConfig, ChordPolicyKind, RiffPriority};
use cello::mem::cache::{BrripPolicy, CacheConfig, LruPolicy, ReplacementPolicy, SetAssocCache};

const WORD: u64 = 4;
const TENSOR_WORDS: u64 = 4096; // T1 and T3 footprints
const BUFFER_WORDS: u64 = 2048; // half a tensor fits

fn cache_cfg() -> CacheConfig {
    CacheConfig {
        capacity_bytes: BUFFER_WORDS * WORD,
        line_bytes: 16,
        associativity: 8,
    }
}

/// Runs the three-step program through a cache; returns DRAM bytes after
/// each step. T1 lives at address 0, T3 above it.
fn run_cache<P: ReplacementPolicy>() -> [u64; 3] {
    let mut cache = SetAssocCache::<P>::new(cache_cfg());
    let t1 = 0u64;
    let t3 = TENSOR_WORDS * WORD;
    let bytes = TENSOR_WORDS * WORD;
    // Step 1: write T1 (producer streams head→tail).
    cache.stream(t1, bytes, true);
    let s1 = cache.stats().dram_bytes();
    // Step 2: read T1 (head→tail), write T3.
    cache.stream(t1, bytes, false);
    cache.stream(t3, bytes, true);
    let s2 = cache.stats().dram_bytes();
    // Step 3: read T3.
    cache.stream(t3, bytes, false);
    let s3 = cache.stats().dram_bytes();
    [s1, s2, s3]
}

fn run_chord() -> [u64; 3] {
    let mut chord = Chord::new(ChordConfig {
        capacity_words: BUFFER_WORDS,
        word_bytes: WORD as u32,
        policy: ChordPolicyKind::PreludeRiff,
        max_entries: 64,
    });
    // Step 1: write T1 (one future use, nearby).
    chord.produce("T1", TENSOR_WORDS, RiffPriority::new(1, 1));
    let s1 = chord.stats().dram_bytes();
    // Step 2: read T1 (last use), write T3 ("frequent ahead": dist 1).
    chord.consume("T1", None);
    chord.produce("T3", TENSOR_WORDS, RiffPriority::new(1, 1));
    let s2 = chord.stats().dram_bytes();
    // Step 3: read T3 (last use).
    chord.consume("T3", None);
    let s3 = chord.stats().dram_bytes();
    chord.check_conservation().unwrap();
    [s1, s2, s3]
}

#[test]
fn chord_beats_line_level_policies_on_fig11_program() {
    let chord = run_chord();
    let lru = run_cache::<LruPolicy>();
    let brrip = run_cache::<BrripPolicy>();
    for step in 0..3 {
        assert!(
            chord[step] <= lru[step],
            "step {step}: CHORD {} > LRU {}",
            chord[step],
            lru[step]
        );
        assert!(
            chord[step] <= brrip[step],
            "step {step}: CHORD {} > BRRIP {}",
            chord[step],
            brrip[step]
        );
    }
    // And strictly better by the end (the figure's conclusion).
    assert!(chord[2] < lru[2]);
    assert!(chord[2] < brrip[2]);
}

/// Step-1 specifics: PRELUDE keeps the head; LRU keeps the tail.
#[test]
fn step1_prelude_keeps_head_lru_keeps_tail() {
    // CHORD: resident prefix is exactly the buffer size, from the head.
    let mut chord = Chord::new(ChordConfig {
        capacity_words: BUFFER_WORDS,
        word_bytes: WORD as u32,
        policy: ChordPolicyKind::PreludeRiff,
        max_entries: 64,
    });
    chord.produce("T1", TENSOR_WORDS, RiffPriority::new(1, 1));
    let e = chord.table().get("T1").unwrap();
    assert_eq!(e.resident_words, BUFFER_WORDS);
    // A head re-read is all hits.
    let r = chord.consume("T1", Some(RiffPriority::new(1, 2)));
    assert_eq!(r.hit_words, BUFFER_WORDS);

    // LRU: after the streaming write, the *head* lines were evicted, so
    // re-reading the head misses everywhere.
    let mut cache = SetAssocCache::<LruPolicy>::new(cache_cfg());
    cache.stream(0, TENSOR_WORDS * WORD, true);
    let misses_head = cache.stream(0, (TENSOR_WORDS / 2) * WORD, false);
    assert_eq!(
        misses_head,
        (TENSOR_WORDS / 2) * WORD / 16,
        "LRU kept the tail, so the head is gone"
    );
}

/// The paper's summary sentence: "operand-level replacement is beneficial for
/// such tensor programs" — quantified as a traffic ratio.
#[test]
fn operand_level_advantage_is_material() {
    let chord = run_chord();
    let lru = run_cache::<LruPolicy>();
    let ratio = lru[2] as f64 / chord[2] as f64;
    assert!(ratio > 1.3, "expected ≥1.3x traffic advantage, got {ratio}");
}

//! Cross-crate integration tests: the qualitative *shapes* of the paper's
//! results, on problem sizes small enough for debug-mode CI.
//!
//! These are the end-to-end guarantees DESIGN.md §6 promises: traffic
//! orderings between configurations, the cold lower bound, capacity
//! monotonicity, and CHORD conservation through a whole workload run.

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule, ScheduleOptions};
use cello::sim::backends::ChordBackend;
use cello::sim::baselines::{run_config, ConfigKind};
use cello::sim::engine::run_schedule;
use cello::workloads::bicgstab::{build_bicgstab_dag, BicgParams};
use cello::workloads::cg::{build_cg_dag, CgParams};
use cello::workloads::gcn::{build_gcn_dag, GcnParams};
use cello::workloads::resnet::{build_resnet_block_dag, ResNetBlockParams};

fn small_cg(n: u64, iterations: u32) -> cello::graph::dag::TensorDag {
    build_cg_dag(&CgParams {
        m: 30_000,
        occupancy: 4.0,
        a_payload_words: 2 * 120_000 + 30_001,
        n,
        nprime: n,
        iterations,
        a_occupancy: None,
    })
}

/// CELLO never moves more DRAM bytes than any other configuration, on any of
/// the four workload families.
#[test]
fn cello_dominates_traffic_everywhere() {
    let accel = CelloConfig::paper();
    let dags: Vec<(&str, cello::graph::dag::TensorDag)> = vec![
        ("cg", small_cg(16, 3)),
        (
            "bicgstab",
            build_bicgstab_dag(&BicgParams {
                m: 30_000,
                occupancy: 4.0,
                a_payload_words: 2 * 120_000 + 30_001,
                n: 1,
                iterations: 3,
            }),
        ),
        (
            "gcn",
            build_gcn_dag(&GcnParams {
                vertices: 2708,
                nnz: 9464,
                features: 1433,
                outputs: 7,
                layers: 1,
            }),
        ),
        (
            "resnet",
            build_resnet_block_dag(&ResNetBlockParams::conv3x()),
        ),
    ];
    for (name, dag) in &dags {
        let cello = run_config(dag, ConfigKind::Cello, &accel, name);
        for kind in [
            ConfigKind::Flexagon,
            ConfigKind::Flat,
            ConfigKind::SetLike,
            ConfigKind::PreludeOnly,
        ] {
            let other = run_config(dag, kind, &accel, name);
            assert!(
                cello.dram_bytes <= other.dram_bytes,
                "{name}: CELLO {} > {} {}",
                cello.dram_bytes,
                kind.label(),
                other.dram_bytes
            );
        }
    }
}

/// With unbounded CHORD capacity, CELLO's DRAM traffic equals the global cold
/// bound exactly: every external read once, every terminal output written once.
#[test]
fn infinite_capacity_reaches_cold_bound() {
    let dag = small_cg(8, 3);
    let accel = CelloConfig::paper().with_sram_bytes(1 << 40);
    let r = run_config(&dag, ConfigKind::Cello, &accel, "cg");
    let wb = accel.word_bytes as u64;
    let ext_bytes: u64 = dag.externals().iter().map(|e| e.meta.words * wb).sum();
    let term_bytes: u64 = dag
        .nodes()
        .filter(|(id, _)| dag.out_edges(*id).is_empty())
        .map(|(_, n)| n.output.words * wb)
        .sum();
    assert_eq!(r.dram_bytes, ext_bytes + term_bytes);
}

/// DRAM traffic is monotonically non-increasing in CHORD capacity (Fig 16b's
/// underlying mechanism).
#[test]
fn capacity_monotonicity() {
    let dag = small_cg(16, 4);
    let mut prev = u64::MAX;
    for mb in [1u64, 2, 4, 8, 16, 64] {
        let accel = CelloConfig::paper().with_sram_bytes(mb << 20);
        let r = run_config(&dag, ConfigKind::Cello, &accel, "cg");
        assert!(
            r.dram_bytes <= prev,
            "{mb} MB: {} > previous {prev}",
            r.dram_bytes
        );
        prev = r.dram_bytes;
    }
}

/// MAC counts are a property of the workload, not the configuration.
#[test]
fn macs_invariant_across_configs() {
    let dag = small_cg(4, 2);
    let accel = CelloConfig::paper();
    let macs: Vec<u64> = ConfigKind::all()
        .into_iter()
        .map(|k| run_config(&dag, k, &accel, "cg").macs)
        .collect();
    assert!(macs.windows(2).all(|w| w[0] == w[1]), "{macs:?}");
}

/// Every configuration produces a valid topological schedule on every
/// workload family.
#[test]
fn all_schedules_validate() {
    let dags = vec![
        small_cg(16, 2),
        build_bicgstab_dag(&BicgParams {
            m: 10_000,
            occupancy: 4.0,
            a_payload_words: 2 * 40_000 + 10_001,
            n: 1,
            iterations: 2,
        }),
        build_gcn_dag(&GcnParams {
            vertices: 1000,
            nnz: 5000,
            features: 64,
            outputs: 7,
            layers: 2,
        }),
        build_resnet_block_dag(&ResNetBlockParams::conv3x()),
    ];
    for dag in &dags {
        for kind in ConfigKind::all() {
            let s = build_schedule(dag, kind.schedule_options());
            s.validate(dag)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        }
    }
}

/// CHORD conserves every word through a full CG run (produced = resident +
/// spilled + evicted + dropped), and the RIFF table never overflows.
#[test]
fn chord_conservation_through_full_run() {
    let dag = small_cg(16, 4);
    let accel = CelloConfig::paper();
    let schedule = build_schedule(&dag, ScheduleOptions::cello());
    let mut backend = ChordBackend::new(accel.chord_config());
    let _ = run_schedule(&dag, &schedule, &accel, &mut backend, "CELLO", "cg");
    backend.chord().check_conservation().unwrap();
    assert!(backend.chord().table().len() <= 64);
}

/// The PRELUDE-only ablation is sandwiched between the explicit oracle and
/// full CELLO — and the gap to CELLO widens with the working set (Fig 16c).
#[test]
fn prelude_sandwich() {
    let accel = CelloConfig::paper();
    for n in [1u64, 16] {
        let dag = small_cg(n, 4);
        let flexagon = run_config(&dag, ConfigKind::Flexagon, &accel, "cg");
        let prelude = run_config(&dag, ConfigKind::PreludeOnly, &accel, "cg");
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "cg");
        assert!(prelude.dram_bytes <= flexagon.dram_bytes);
        assert!(cello.dram_bytes <= prelude.dram_bytes);
    }
}

/// Bandwidth only rescales memory-bound time: at 4x the bandwidth, no run is
/// slower, and memory-bound runs get close to 4x faster.
#[test]
fn bandwidth_scaling_sane() {
    let dag = small_cg(16, 3);
    let fast = run_config(&dag, ConfigKind::Flexagon, &CelloConfig::paper(), "cg");
    let slow = run_config(
        &dag,
        ConfigKind::Flexagon,
        &CelloConfig::paper_250gbs(),
        "cg",
    );
    let ratio = slow.seconds / fast.seconds;
    assert!(
        (1.0..=4.01).contains(&ratio),
        "bandwidth scaling ratio {ratio}"
    );
    // Flexagon on CG is deeply memory bound: expect near-4x.
    assert!(ratio > 3.5, "{ratio}");
}

/// GNN: CELLO == FLAT exactly; ResNet: CELLO == SET exactly (the paper's
/// tie observations are equalities in the traffic model).
#[test]
fn paper_tie_cases_are_exact() {
    let accel = CelloConfig::paper();
    let gcn = build_gcn_dag(&GcnParams {
        vertices: 2708,
        nnz: 9464,
        features: 1433,
        outputs: 7,
        layers: 1,
    });
    assert_eq!(
        run_config(&gcn, ConfigKind::Cello, &accel, "gcn").dram_bytes,
        run_config(&gcn, ConfigKind::Flat, &accel, "gcn").dram_bytes
    );
    let resnet = build_resnet_block_dag(&ResNetBlockParams::conv3x());
    let accel2 = accel.with_word_bytes(2);
    assert_eq!(
        run_config(&resnet, ConfigKind::Cello, &accel2, "resnet").dram_bytes,
        run_config(&resnet, ConfigKind::SetLike, &accel2, "resnet").dram_bytes
    );
}

//! Property tests on the cache substrate: accounting identities, the LRU
//! stack property, compulsory-miss lower bounds, and determinism.

use cello::mem::cache::{BrripPolicy, CacheConfig, LruPolicy, SetAssocCache};
use proptest::prelude::*;
use std::collections::HashSet;

fn trace_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..65_536, any::<bool>()), 1..800)
}

fn run_lru(cfg: CacheConfig, trace: &[(u64, bool)]) -> cello::mem::stats::AccessStats {
    let mut c = SetAssocCache::<LruPolicy>::new(cfg);
    for &(addr, w) in trace {
        c.access(addr, w);
    }
    c.flush_dirty();
    c.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// hits + misses == accesses; DRAM reads == misses × line; misses are at
    /// least the number of distinct lines touched (compulsory bound).
    #[test]
    fn accounting_identities(trace in trace_strategy()) {
        let cfg = CacheConfig { capacity_bytes: 2048, line_bytes: 16, associativity: 4 };
        let stats = run_lru(cfg, &trace);
        prop_assert_eq!(stats.hits + stats.misses, trace.len() as u64);
        prop_assert_eq!(stats.dram_read_bytes, stats.misses * 16);
        let distinct: HashSet<u64> = trace.iter().map(|&(a, _)| a / 16).collect();
        prop_assert!(stats.misses >= distinct.len() as u64);
        // Writebacks can never exceed misses + flushes of distinct lines.
        prop_assert!(stats.writebacks <= stats.misses + distinct.len() as u64);
    }

    /// LRU stack property: a larger fully-associative LRU cache never misses
    /// more on the same trace.
    #[test]
    fn lru_inclusion(trace in trace_strategy()) {
        let mut prev = u64::MAX;
        for lines in [2usize, 4, 8, 32, 128] {
            let cfg = CacheConfig {
                capacity_bytes: (lines * 16) as u64,
                line_bytes: 16,
                associativity: lines,
            };
            let stats = run_lru(cfg, &trace);
            prop_assert!(stats.misses <= prev);
            prev = stats.misses;
        }
    }

    /// Both policies are deterministic: identical traces → identical stats.
    #[test]
    fn determinism(trace in trace_strategy()) {
        let cfg = CacheConfig { capacity_bytes: 1024, line_bytes: 16, associativity: 8 };
        let a = run_lru(cfg, &trace);
        let b = run_lru(cfg, &trace);
        prop_assert_eq!(a, b);
        let run_brrip = |t: &[(u64, bool)]| {
            let mut c = SetAssocCache::<BrripPolicy>::new(cfg);
            for &(addr, w) in t {
                c.access(addr, w);
            }
            c.stats()
        };
        prop_assert_eq!(run_brrip(&trace), run_brrip(&trace));
    }

    /// A trace that fits entirely misses exactly once per distinct line.
    #[test]
    fn fitting_trace_compulsory_only(
        lines in proptest::collection::vec(0u64..32, 1..200),
    ) {
        let cfg = CacheConfig { capacity_bytes: 1024, line_bytes: 16, associativity: 64 };
        let trace: Vec<(u64, bool)> = lines.iter().map(|&l| (l * 16, false)).collect();
        let stats = run_lru(cfg, &trace);
        let distinct: HashSet<u64> = lines.iter().copied().collect();
        prop_assert_eq!(stats.misses, distinct.len() as u64);
    }

    /// Dirty data is written back exactly once: total writebacks equal the
    /// number of distinct lines ever written.
    #[test]
    fn single_writeback_per_dirty_line(
        writes in proptest::collection::vec(0u64..64, 1..200),
    ) {
        let cfg = CacheConfig { capacity_bytes: 256, line_bytes: 16, associativity: 4 };
        let mut c = SetAssocCache::<LruPolicy>::new(cfg);
        for &l in &writes {
            c.access(l * 16, true);
        }
        c.flush_dirty();
        let distinct: HashSet<u64> = writes.iter().copied().collect();
        // Every write-allocated line is eventually written back ≥ once; lines
        // re-fetched after eviction and re-dirtied may write back again, so
        // writebacks ≥ distinct and ≤ misses.
        prop_assert!(c.stats().writebacks >= distinct.len() as u64);
        prop_assert!(c.stats().writebacks <= c.stats().misses);
    }
}

//! Property tests on the DAG IR and SCORE over *random* DAGs: transitivity
//! detection agrees with brute force, Algorithm 2 totals are consistent,
//! every scheduler preset emits valid schedules, and CELLO's traffic never
//! exceeds the op-by-op oracle's.

use cello::core::accel::CelloConfig;
use cello::core::score::binding::{build_schedule, ScheduleOptions};
use cello::core::score::classify::classify;
use cello::graph::dag::{NodeId, TensorDag};
use cello::graph::edge::TensorMeta;
use cello::graph::node::OpKind;
use cello::sim::baselines::{run_config, ConfigKind};
use cello::tensor::einsum::EinsumSpec;
use cello::tensor::shape::{RankExtent, RankId};
use proptest::prelude::*;

/// Three node flavors with distinct dominance.
fn spec(flavor: u8) -> EinsumSpec {
    match flavor % 3 {
        0 => EinsumSpec::from_parts(
            // uncontracted dominant (skewed update)
            vec![
                vec![RankId::new("m"), RankId::new("j")],
                vec![RankId::new("j"), RankId::new("n")],
            ],
            vec![RankId::new("m"), RankId::new("n")],
            &[
                RankExtent::dense("m", 50_000),
                RankExtent::dense("j", 16),
                RankExtent::dense("n", 16),
            ],
        ),
        1 => EinsumSpec::from_parts(
            // contracted dominant
            vec![
                vec![RankId::new("k"), RankId::new("p")],
                vec![RankId::new("k"), RankId::new("n")],
            ],
            vec![RankId::new("p"), RankId::new("n")],
            &[
                RankExtent::dense("k", 50_000),
                RankExtent::dense("p", 16),
                RankExtent::dense("n", 16),
            ],
        ),
        _ => EinsumSpec::parse(
            // balanced
            "mk,kn->mn",
            &[
                RankExtent::dense("m", 512),
                RankExtent::dense("k", 512),
                RankExtent::dense("n", 512),
            ],
        ),
    }
}

fn dst_ranks(flavor: u8) -> &'static [&'static str] {
    match flavor % 3 {
        0 => &["m", "j"],
        1 => &["k", "n"],
        _ => &["m", "k"],
    }
}

/// Builds a random DAG from (flavors, edge pairs); returns None for empty.
fn build(flavors: &[u8], raw_edges: &[(usize, usize)]) -> TensorDag {
    let mut dag = TensorDag::new();
    for (i, &f) in flavors.iter().enumerate() {
        let words = match f % 3 {
            0 => 50_000 * 16,
            1 => 256,
            _ => 512 * 512,
        };
        dag.add_op(
            format!("op{i}"),
            spec(f),
            if f % 5 == 4 {
                OpKind::Inverse
            } else {
                OpKind::TensorMac
            },
            TensorMeta::dense(format!("T{i}"), &["m", "n"], words),
        );
    }
    let n = flavors.len();
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in raw_edges {
        let (src, dst) = (a % n, b % n);
        if src < dst && seen.insert((src, dst)) {
            dag.add_edge(NodeId(src), NodeId(dst), dst_ranks(flavors[dst]));
        }
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Longest-path transitivity detection matches brute-force path search.
    #[test]
    fn transitivity_matches_bruteforce(
        flavors in proptest::collection::vec(0u8..15, 2..12),
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        let dag = build(&flavors, &edges);
        for (eid, _) in dag.edges() {
            prop_assert_eq!(
                dag.edge_is_transitive(eid),
                dag.edge_is_transitive_bruteforce(eid),
                "edge {:?}", eid
            );
        }
    }

    /// Algorithm 2 assigns every edge exactly one dependency; numcast counts
    /// non-transitive out-edges; multicast ⇔ numcast > 1.
    #[test]
    fn classification_totals(
        flavors in proptest::collection::vec(0u8..15, 2..12),
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        let dag = build(&flavors, &edges);
        let cls = classify(&dag);
        prop_assert_eq!(cls.histogram().iter().sum::<usize>(), dag.edge_count());
        for (nid, _) in dag.nodes() {
            let non_trans = dag.out_edges(nid).iter()
                .filter(|&&e| !cls.transitive[e.0]).count() as u32;
            prop_assert_eq!(cls.numcast[nid.0], non_trans);
            prop_assert_eq!(cls.parallel_multicast[nid.0], non_trans > 1);
        }
    }

    /// Every scheduler preset yields a validating schedule on random DAGs.
    #[test]
    fn schedules_always_validate(
        flavors in proptest::collection::vec(0u8..15, 2..12),
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..30),
    ) {
        let dag = build(&flavors, &edges);
        for opts in [
            ScheduleOptions::best_intra(),
            ScheduleOptions::flat(),
            ScheduleOptions::set_like(),
            ScheduleOptions::prelude_only(),
            ScheduleOptions::cello(),
        ] {
            let s = build_schedule(&dag, opts);
            prop_assert!(s.validate(&dag).is_ok(), "{:?}", opts);
            // Every node scheduled exactly once.
            let total: usize = s.phases.iter().map(|p| p.ops.len()).sum();
            prop_assert_eq!(total, dag.node_count());
        }
    }

    /// On arbitrary DAGs, CELLO's DRAM traffic never exceeds the op-by-op
    /// oracle's, and FLAT's never exceeds it either.
    #[test]
    fn traffic_ordering_on_random_dags(
        flavors in proptest::collection::vec(0u8..15, 2..10),
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..24),
    ) {
        let dag = build(&flavors, &edges);
        let accel = CelloConfig::paper();
        let oracle = run_config(&dag, ConfigKind::Flexagon, &accel, "prop");
        let flat = run_config(&dag, ConfigKind::Flat, &accel, "prop");
        let cello = run_config(&dag, ConfigKind::Cello, &accel, "prop");
        prop_assert!(flat.dram_bytes <= oracle.dram_bytes);
        prop_assert!(cello.dram_bytes <= oracle.dram_bytes);
    }

    /// Terminal outputs always reach DRAM: traffic is at least the terminal
    /// footprint under every configuration.
    #[test]
    fn terminals_always_written(
        flavors in proptest::collection::vec(0u8..15, 2..10),
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..24),
    ) {
        let dag = build(&flavors, &edges);
        let accel = CelloConfig::paper();
        let wb = accel.word_bytes as u64;
        let term_bytes: u64 = dag
            .nodes()
            .filter(|(id, _)| dag.out_edges(*id).is_empty())
            .map(|(_, n)| n.output.words * wb)
            .sum();
        for kind in [ConfigKind::Flexagon, ConfigKind::Cello] {
            let r = run_config(&dag, kind, &accel, "prop");
            prop_assert!(
                r.stats.dram_write_bytes >= term_bytes,
                "{}: wrote {} < terminals {}",
                kind.label(), r.stats.dram_write_bytes, term_bytes
            );
        }
    }
}
